#include "dollymp/common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dollymp {
namespace {

TEST(Csv, ParseSimple) {
  const auto t = CsvTable::parse("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cell(0, 0), "1");
  EXPECT_EQ(t.cell(1, 2), "6");
}

TEST(Csv, ParseNoTrailingNewline) {
  const auto t = CsvTable::parse("a,b\n1,2");
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cell(0, 1), "2");
}

TEST(Csv, ParseCrlf) {
  const auto t = CsvTable::parse("a,b\r\n1,2\r\n");
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cell(0, 0), "1");
}

TEST(Csv, QuotedFields) {
  const auto t = CsvTable::parse("name,note\n\"Smith, John\",\"said \"\"hi\"\"\"\n");
  EXPECT_EQ(t.cell(0, 0), "Smith, John");
  EXPECT_EQ(t.cell(0, 1), "said \"hi\"");
}

TEST(Csv, QuotedNewline) {
  const auto t = CsvTable::parse("a,b\n\"line1\nline2\",x\n");
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cell(0, 0), "line1\nline2");
}

TEST(Csv, EmptyFields) {
  const auto t = CsvTable::parse("a,b,c\n,,\n");
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cell(0, 0), "");
  EXPECT_EQ(t.cell(0, 2), "");
}

TEST(Csv, RaggedRowThrows) {
  EXPECT_THROW(CsvTable::parse("a,b\n1,2,3\n"), std::runtime_error);
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(CsvTable::parse("a\n\"oops\n"), std::runtime_error);
}

TEST(Csv, ColumnLookup) {
  const auto t = CsvTable::parse("x,y\n7,8\n");
  EXPECT_EQ(t.column("y"), std::size_t{1});
  EXPECT_FALSE(t.column("z").has_value());
  EXPECT_EQ(t.cell(0, "x"), "7");
  EXPECT_THROW(t.cell(0, "z"), std::out_of_range);
}

TEST(Csv, TypedAccess) {
  const auto t = CsvTable::parse("d,i\n2.5,42\n");
  EXPECT_DOUBLE_EQ(t.cell_double(0, "d"), 2.5);
  EXPECT_EQ(t.cell_int(0, "i"), 42);
  EXPECT_THROW(t.cell_int(0, "d"), std::runtime_error);
}

TEST(Csv, WriterQuotesWhenNeeded) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_header({"a", "b"});
  w.write_row(std::string("x,y"), 3.25);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",3.25\n");
}

TEST(Csv, EscapeRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("multi\nline"), "\"multi\nline\"");
}

TEST(Csv, RoundTrip) {
  CsvTable t({"job", "value"});
  t.add_row({"wordcount, big", "1.5"});
  t.add_row({"plain", "2"});
  const auto parsed = CsvTable::parse(t.to_string());
  EXPECT_EQ(parsed.rows(), 2u);
  EXPECT_EQ(parsed.cell(0, 0), "wordcount, big");
  EXPECT_EQ(parsed.cell(1, "value"), "2");
}

TEST(Csv, AddRowWidthMismatchThrows) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Csv, SaveAndLoad) {
  CsvTable t({"k", "v"});
  t.add_row({"x", "1"});
  const std::string path = testing::TempDir() + "/dollymp_csv_test.csv";
  t.save(path);
  const auto loaded = CsvTable::load(path);
  EXPECT_EQ(loaded.rows(), 1u);
  EXPECT_EQ(loaded.cell(0, "k"), "x");
  EXPECT_THROW(CsvTable::load("/nonexistent/nope.csv"), std::runtime_error);
}

}  // namespace
}  // namespace dollymp
