// Unit tests for the execution models (sim/execution.h): duration pool
// semantics, environment scaling and the Eq. (4)/(6) work accrual.
#include "dollymp/sim/execution.h"

#include <gtest/gtest.h>

#include <set>

#include "dollymp/sim/runtime_state.h"
#include "dollymp/sim/runtime_store.h"

namespace dollymp {
namespace {

/// Hand-built runtimes need backing storage now that PhaseRuntime holds a
/// span and TaskRuntime a slab-backed copy list.
CopySlab& test_slab() {
  static CopySlab slab;
  return slab;
}

TaskRuntime make_task() {
  TaskRuntime task;
  task.copies.bind(&test_slab());
  return task;
}

void set_pool(PhaseRuntime& phase, std::vector<double> values) {
  static std::vector<std::unique_ptr<std::vector<double>>> pools;  // keep alive
  pools.push_back(std::make_unique<std::vector<double>>(std::move(values)));
  phase.duration_pool.assign(pools.back()->data(), pools.back()->size());
}

PhaseRuntime make_phase(double theta, double sigma, int tasks) {
  static std::vector<std::unique_ptr<PhaseSpec>> specs;  // keep specs alive
  specs.push_back(std::make_unique<PhaseSpec>());
  PhaseSpec& spec = *specs.back();
  spec.name = "p";
  spec.task_count = tasks;
  spec.demand = {1, 1};
  spec.theta_seconds = theta;
  spec.sigma_seconds = sigma;

  PhaseRuntime phase;
  phase.spec = &spec;
  phase.speedup = SpeedupFunction::from_stats(theta, sigma);
  set_pool(phase, std::vector<double>(static_cast<std::size_t>(std::max(tasks, 16)), theta));
  return phase;
}

TEST(Execution, FirstCopyUsesOwnPoolEntry) {
  PhaseRuntime phase = make_phase(10.0, 0.0, 4);
  set_pool(phase, {11.0, 12.0, 13.0, 14.0});
  Rng rng(1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(sample_copy_base_seconds(phase, i, /*is_first_copy=*/true, rng),
                     11.0 + i);
  }
}

TEST(Execution, ClonesDrawFromPool) {
  PhaseRuntime phase = make_phase(10.0, 0.0, 4);
  set_pool(phase, {11.0, 12.0, 13.0, 14.0});
  Rng rng(2);
  std::set<double> drawn;
  for (int i = 0; i < 200; ++i) {
    const double d = sample_copy_base_seconds(phase, 0, /*is_first_copy=*/false, rng);
    drawn.insert(d);
    ASSERT_GE(d, 11.0);
    ASSERT_LE(d, 14.0);
  }
  // All pool entries eventually sampled.
  EXPECT_EQ(drawn.size(), 4u);
}

TEST(Execution, EmptyPoolThrows) {
  PhaseRuntime phase = make_phase(10.0, 0.0, 1);
  phase.duration_pool.clear();
  Rng rng(3);
  EXPECT_THROW((void)sample_copy_base_seconds(phase, 0, true, rng), std::logic_error);
}

TEST(Execution, MaterializedPoolHasMinimumSize) {
  // Single-task phases still get a >= 16-entry pool so clones re-draw.
  const JobSpec job = JobSpec::single_task(0, {1, 1}, 30.0, 20.0);
  Cluster cluster = Cluster::uniform(4, {8, 8});
  const LocalityModel locality({}, cluster);
  Rng rng(4);
  RuntimeStore store;
  const JobRuntime& runtime = store.jobs()[store.materialize(job, 1.0, locality, rng)];
  EXPECT_GE(runtime.phases[0].duration_pool.size(), 16u);
}

TEST(Execution, ScaleCopySeconds) {
  // base 10 s, 1.1x locality penalty, 1.5x background contention, 2x speed.
  EXPECT_DOUBLE_EQ(scale_copy_seconds(10.0, /*server_base_speed=*/2.0, 1.1, 1.5),
                   10.0 * 1.1 * 1.5 / 2.0);
  EXPECT_DOUBLE_EQ(scale_copy_seconds(10.0, /*server_base_speed=*/0.5, 1.0, 1.0), 20.0);
  EXPECT_THROW((void)scale_copy_seconds(10.0, 0.0, 1.0, 1.0), std::logic_error);
}

TEST(Execution, SecondsToSlots) {
  EXPECT_EQ(seconds_to_slots(10.0, 5.0), 2);
  EXPECT_EQ(seconds_to_slots(10.1, 5.0), 3);
  EXPECT_EQ(seconds_to_slots(0.0, 5.0), 1);   // minimum one slot
  EXPECT_EQ(seconds_to_slots(4.9, 5.0), 1);
  EXPECT_EQ(seconds_to_slots(5.0, 5.0), 1);
  EXPECT_THROW((void)seconds_to_slots(1.0, 0.0), std::invalid_argument);
}

TEST(Execution, WorkAccrualSingleCopy) {
  PhaseRuntime phase = make_phase(10.0, 0.0, 1);
  TaskRuntime task = make_task();
  task.copies.push_back({0, 0, kNever, LocalityLevel::kNode, true, false, 0.0});
  task.work_updated_at = 0;
  accrue_work(task, phase, 4, 1.0);
  // Degenerate speedup (sigma = 0): h == 1, so 4 slots = 4 s of work.
  EXPECT_DOUBLE_EQ(task.work_done_seconds, 4.0);
  // Idempotent for non-advancing time.
  accrue_work(task, phase, 4, 1.0);
  EXPECT_DOUBLE_EQ(task.work_done_seconds, 4.0);
}

TEST(Execution, WorkAccrualWithClones) {
  // alpha = 3 -> h(2) = 1.25.
  const double sigma = 10.0 / std::sqrt(3.0);
  PhaseRuntime phase = make_phase(10.0, sigma, 1);
  TaskRuntime task = make_task();
  task.copies.push_back({0, 0, kNever, LocalityLevel::kNode, true, false, 0.0});
  task.copies.push_back({1, 0, kNever, LocalityLevel::kNode, true, false, 0.0});
  task.work_updated_at = 0;
  accrue_work(task, phase, 4, 1.0);
  EXPECT_NEAR(task.work_done_seconds, 4.0 * 1.25, 1e-9);
}

TEST(Execution, NoWorkWithoutCopies) {
  PhaseRuntime phase = make_phase(10.0, 0.0, 1);
  TaskRuntime task;
  task.work_updated_at = 0;
  accrue_work(task, phase, 10, 1.0);
  EXPECT_DOUBLE_EQ(task.work_done_seconds, 0.0);
  EXPECT_EQ(predict_work_finish(task, phase, 10, 1.0), kNever);
}

TEST(Execution, PredictWorkFinish) {
  PhaseRuntime phase = make_phase(10.0, 0.0, 1);
  TaskRuntime task = make_task();
  task.copies.push_back({0, 0, kNever, LocalityLevel::kNode, true, false, 0.0});
  task.work_updated_at = 0;
  EXPECT_EQ(predict_work_finish(task, phase, 0, 1.0), 10);
  task.work_done_seconds = 9.5;
  EXPECT_EQ(predict_work_finish(task, phase, 3, 1.0), 4);  // ceil(0.5/1) = 1 slot
  task.work_done_seconds = 10.0;
  EXPECT_EQ(predict_work_finish(task, phase, 5, 1.0), 5);  // already done
}

}  // namespace
}  // namespace dollymp
