#include <gtest/gtest.h>

#include <cmath>

#include "dollymp/common/stats.h"
#include "dollymp/workload/apps.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_io.h"
#include "dollymp/workload/trace_model.h"

namespace dollymp {
namespace {

TEST(Apps, WordCountStructure) {
  const JobSpec job = make_wordcount(5, 4.0, 123.0);
  EXPECT_EQ(job.app, "wordcount");
  EXPECT_DOUBLE_EQ(job.arrival_seconds, 123.0);
  ASSERT_EQ(job.phases.size(), 2u);
  EXPECT_EQ(job.phases[0].name, "map");
  EXPECT_EQ(job.phases[1].name, "reduce");
  // 4 GB / 0.25 GB blocks = 16 map tasks; reduces = 16 * 0.25 = 4.
  EXPECT_EQ(job.phases[0].task_count, 16);
  EXPECT_EQ(job.phases[1].task_count, 4);
  EXPECT_EQ(job.phases[1].parents, (std::vector<PhaseIndex>{0}));
  EXPECT_GT(job.phases[0].sigma_seconds, 0.0);
}

TEST(Apps, WordCountScalesWithInput) {
  const JobSpec small = make_wordcount(1, 1.0);
  const JobSpec big = make_wordcount(2, 10.0);
  EXPECT_EQ(small.phases[0].task_count, 4);
  EXPECT_EQ(big.phases[0].task_count, 40);
  EXPECT_DOUBLE_EQ(small.phases[0].theta_seconds, big.phases[0].theta_seconds);
}

TEST(Apps, WordCountRejectsBadInput) {
  EXPECT_THROW(make_wordcount(1, 0.0), std::invalid_argument);
  AppConfig bad;
  bad.block_gb = 0.0;
  EXPECT_THROW(make_wordcount(1, 1.0, 0.0, bad), std::invalid_argument);
}

TEST(Apps, PageRankChainStructure) {
  const JobSpec job = make_pagerank(9, 2.0, 3);
  EXPECT_EQ(job.app, "pagerank");
  // partition + 3 * (compute, aggregate) = 7 phases.
  ASSERT_EQ(job.phases.size(), 7u);
  // Each phase (after the first) depends on the previous one: a chain.
  for (std::size_t k = 1; k < job.phases.size(); ++k) {
    ASSERT_EQ(job.phases[k].parents.size(), 1u);
    EXPECT_EQ(job.phases[k].parents[0], static_cast<PhaseIndex>(k - 1));
  }
  EXPECT_THROW(make_pagerank(1, 2.0, 0), std::invalid_argument);
}

TEST(TraceModel, Reproducible) {
  TraceModel a({}, 42);
  TraceModel b({}, 42);
  const auto ja = a.sample_jobs(20);
  const auto jb = b.sample_jobs(20);
  ASSERT_EQ(ja.size(), jb.size());
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_EQ(ja[i].phases.size(), jb[i].phases.size());
    EXPECT_EQ(ja[i].total_tasks(), jb[i].total_tasks());
    EXPECT_DOUBLE_EQ(ja[i].phases[0].theta_seconds, jb[i].phases[0].theta_seconds);
  }
}

TEST(TraceModel, JobsAreValidAndIdsSequential) {
  TraceModel model({}, 7);
  const auto jobs = model.sample_jobs(50, 100);
  ASSERT_EQ(jobs.size(), 50u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, static_cast<JobId>(100 + i));
    EXPECT_NO_THROW(jobs[i].validate());
  }
}

TEST(TraceModel, MostJobsAreSmall) {
  TraceModelConfig config;
  TraceModel model(config, 11);
  const auto jobs = model.sample_jobs(400);
  int small = 0;
  for (const auto& j : jobs) small += j.app == "trace-small" ? 1 : 0;
  // 95% nominal; allow sampling noise.
  EXPECT_GT(small, 360);
}

TEST(TraceModel, StragglerPhaseFractionRoughlyMatches) {
  TraceModelConfig config;
  TraceModel model(config, 13);
  const auto jobs = model.sample_jobs(300);
  int straggly = 0;
  int phases = 0;
  for (const auto& j : jobs) {
    for (const auto& p : j.phases) {
      ++phases;
      // Straggler-prone phases carry the high CV.
      if (p.sigma_seconds > 0.5 * p.theta_seconds) ++straggly;
    }
  }
  const double fraction = static_cast<double>(straggly) / phases;
  EXPECT_NEAR(fraction, config.straggler_phase_fraction, 0.08);
}

TEST(TraceModel, DemandsWithinConfiguredBounds) {
  TraceModelConfig config;
  TraceModel model(config, 17);
  const auto jobs = model.sample_jobs(200);
  for (const auto& j : jobs) {
    for (const auto& p : j.phases) {
      EXPECT_GE(p.demand.cpu(), 1.0);
      EXPECT_LE(p.demand.cpu(), config.cpu_max);
      EXPECT_GE(p.demand.mem(), 0.5);
      EXPECT_LE(p.demand.mem(), config.mem_max);
      EXPECT_LE(p.task_count, config.max_tasks_per_phase);
      EXPECT_GE(p.theta_seconds, 5.0);
      EXPECT_LE(p.theta_seconds, config.theta_max_seconds);
    }
  }
}

TEST(Arrivals, Batch) {
  auto jobs = TraceModel({}, 1).sample_jobs(5);
  assign_batch_arrivals(jobs);
  for (const auto& j : jobs) EXPECT_DOUBLE_EQ(j.arrival_seconds, 0.0);
}

TEST(Arrivals, Fixed) {
  auto jobs = TraceModel({}, 1).sample_jobs(4);
  assign_fixed_arrivals(jobs, 20.0);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(jobs[i].arrival_seconds, 20.0 * static_cast<double>(i));
  }
  EXPECT_THROW(assign_fixed_arrivals(jobs, -1.0), std::invalid_argument);
}

TEST(Arrivals, JitteredMeanGap) {
  auto jobs = TraceModel({}, 2).sample_jobs(500);
  assign_jittered_arrivals(jobs, 20.0, 0.3, 9);
  // Non-decreasing and mean gap near 20.
  double prev = -1.0;
  for (const auto& j : jobs) {
    EXPECT_GE(j.arrival_seconds, prev);
    prev = j.arrival_seconds;
  }
  const double mean_gap = jobs.back().arrival_seconds / static_cast<double>(jobs.size() - 1);
  EXPECT_NEAR(mean_gap, 20.0, 1.0);
}

TEST(Arrivals, PoissonMeanGap) {
  auto jobs = TraceModel({}, 3).sample_jobs(2000);
  assign_poisson_arrivals(jobs, 10.0, 21);
  const double mean_gap = jobs.back().arrival_seconds / static_cast<double>(jobs.size() - 1);
  EXPECT_NEAR(mean_gap, 10.0, 1.0);
}

TEST(Arrivals, DiurnalMeanGapMatches) {
  auto jobs = TraceModel({}, 4).sample_jobs(4000);
  assign_diurnal_arrivals(jobs, 10.0, 0.6, 3600.0, 31);
  double prev = -1.0;
  for (const auto& j : jobs) {
    ASSERT_GE(j.arrival_seconds, prev);
    prev = j.arrival_seconds;
  }
  const double mean_gap = jobs.back().arrival_seconds / static_cast<double>(jobs.size() - 1);
  EXPECT_NEAR(mean_gap, 10.0, 1.0);
}

TEST(Arrivals, DiurnalRateActuallyOscillates) {
  // Count arrivals in the peak half-period vs the trough half-period of
  // the first cycle: the peak must receive clearly more.
  auto jobs = TraceModel({}, 5).sample_jobs(5000);
  const double period = 2000.0;
  assign_diurnal_arrivals(jobs, 2.0, 0.8, period, 33);
  int peak = 0;
  int trough = 0;
  for (const auto& j : jobs) {
    const double phase = std::fmod(j.arrival_seconds, period) / period;
    if (phase < 0.5) ++peak;      // sin > 0 half
    else ++trough;                // sin < 0 half
  }
  EXPECT_GT(peak, trough * 2);
}

TEST(Arrivals, DiurnalValidation) {
  auto jobs = TraceModel({}, 6).sample_jobs(3);
  EXPECT_THROW(assign_diurnal_arrivals(jobs, 0.0, 0.5, 100.0, 1), std::invalid_argument);
  EXPECT_THROW(assign_diurnal_arrivals(jobs, 1.0, 1.0, 100.0, 1), std::invalid_argument);
  EXPECT_THROW(assign_diurnal_arrivals(jobs, 1.0, -0.1, 100.0, 1), std::invalid_argument);
  EXPECT_THROW(assign_diurnal_arrivals(jobs, 1.0, 0.5, 0.0, 1), std::invalid_argument);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  TraceModel model({}, 23);
  auto jobs = model.sample_jobs(30);
  assign_jittered_arrivals(jobs, 15.0, 0.2, 5);
  jobs.push_back(make_pagerank(1000, 2.0, 2, 999.0));

  const std::string csv = trace_to_csv(jobs);
  const auto loaded = trace_from_csv(csv);
  ASSERT_EQ(loaded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(loaded[i].id, jobs[i].id);
    EXPECT_EQ(loaded[i].name, jobs[i].name);
    EXPECT_EQ(loaded[i].app, jobs[i].app);
    EXPECT_DOUBLE_EQ(loaded[i].arrival_seconds, jobs[i].arrival_seconds);
    ASSERT_EQ(loaded[i].phases.size(), jobs[i].phases.size());
    for (std::size_t k = 0; k < jobs[i].phases.size(); ++k) {
      const auto& a = loaded[i].phases[k];
      const auto& b = jobs[i].phases[k];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.task_count, b.task_count);
      EXPECT_EQ(a.demand, b.demand);
      EXPECT_DOUBLE_EQ(a.theta_seconds, b.theta_seconds);
      EXPECT_DOUBLE_EQ(a.sigma_seconds, b.sigma_seconds);
      EXPECT_EQ(a.parents, b.parents);
    }
  }
}

TEST(TraceIo, FileRoundTrip) {
  auto jobs = TraceModel({}, 29).sample_jobs(5);
  const std::string path = testing::TempDir() + "/dollymp_trace_test.csv";
  save_trace(jobs, path);
  const auto loaded = load_trace(path);
  EXPECT_EQ(loaded.size(), jobs.size());
  EXPECT_THROW(load_trace("/nonexistent/trace.csv"), std::runtime_error);
}

}  // namespace
}  // namespace dollymp
