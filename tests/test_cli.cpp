// Tests for the shared command-line helpers (common/cli.h): --flag=value
// normalization, separator splitting, and the did-you-mean rejection
// message every dollymp_* tool now emits for unknown flags.
#include "dollymp/common/cli.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dollymp::cli {
namespace {

std::vector<std::string> normalize(std::vector<std::string> argv_strings) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("tool"));
  for (auto& s : argv_strings) argv.push_back(s.data());
  return normalize_args(static_cast<int>(argv.size()), argv.data());
}

TEST(CliNormalize, ExpandsEqualsFormIntoFlagValuePairs) {
  const auto args = normalize({"--jobs=50", "--scheduler", "drf"});
  ASSERT_EQ(args.size(), 4u);
  EXPECT_EQ(args[0], "--jobs");
  EXPECT_EQ(args[1], "50");
  EXPECT_EQ(args[2], "--scheduler");
  EXPECT_EQ(args[3], "drf");
}

TEST(CliNormalize, LeavesNonFlagArgumentsWithEqualsAlone) {
  // A value like a file name or key=value payload is not a flag.
  const auto args = normalize({"--out", "dir/name=weird.csv", "a=b"});
  ASSERT_EQ(args.size(), 3u);
  EXPECT_EQ(args[1], "dir/name=weird.csv");
  EXPECT_EQ(args[2], "a=b");
}

TEST(CliNormalize, KeepsValueWithEmbeddedEqualsIntact) {
  // Only the FIRST '=' splits: --define=a=b yields value "a=b".
  const auto args = normalize({"--define=a=b"});
  ASSERT_EQ(args.size(), 2u);
  EXPECT_EQ(args[0], "--define");
  EXPECT_EQ(args[1], "a=b");
}

TEST(CliNormalize, EmptyArgvYieldsEmpty) {
  EXPECT_TRUE(normalize({}).empty());
}

TEST(CliSplit, SplitsOnSeparator) {
  const auto parts = split("google:300", ':');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "google");
  EXPECT_EQ(parts[1], "300");
}

TEST(CliSplit, KeepsEmptyLeadingAndMiddleTokens) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(CliEditDistance, BasicDistances) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("--help", "--help"), 0u);
  EXPECT_EQ(edit_distance("--hlep", "--help"), 2u);  // transposition = 2 edits
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
}

TEST(CliClosestFlag, SuggestsNearbyFlag) {
  const std::vector<std::string> known = {"--help", "--jobs", "--scheduler"};
  EXPECT_EQ(closest_flag("--hlep", known), "--help");
  EXPECT_EQ(closest_flag("--job", known), "--jobs");
  EXPECT_EQ(closest_flag("--schedular", known), "--scheduler");
}

TEST(CliClosestFlag, RefusesImplausibleSuggestions) {
  const std::vector<std::string> known = {"--help", "--jobs"};
  EXPECT_EQ(closest_flag("--totally-unrelated-flag", known), "");
}

TEST(CliClosestFlag, TieBreaksTowardEarlierEntry) {
  // Both candidates are distance 1 from "--jobz"; the first listed wins so
  // the suggestion is deterministic.
  const std::vector<std::string> known = {"--jobs", "--joba"};
  EXPECT_EQ(closest_flag("--jobz", known), "--jobs");
}

TEST(CliUnknownFlagMessage, IncludesSuggestionWhenClose) {
  const std::vector<std::string> known = {"--help", "--jobs"};
  EXPECT_EQ(unknown_flag_message("--hlep", known),
            "unknown option --hlep (did you mean --help?)");
}

TEST(CliUnknownFlagMessage, OmitsSuggestionWhenNothingIsClose) {
  const std::vector<std::string> known = {"--help"};
  EXPECT_EQ(unknown_flag_message("--zzzzzzzzzzzz", known),
            "unknown option --zzzzzzzzzzzz");
}

}  // namespace
}  // namespace dollymp::cli
