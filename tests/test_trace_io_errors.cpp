// Error handling and tolerance of the trace CSV reader — the drop-in
// surface for real cluster traces, so malformed input must fail loudly
// and understandably rather than produce corrupt workloads.
#include <gtest/gtest.h>

#include "dollymp/workload/trace_io.h"

namespace dollymp {
namespace {

const char* kHeader =
    "job_id,job_name,app,arrival_s,phase,phase_name,tasks,cpu,mem_gb,theta_s,sigma_s,"
    "parents\n";

std::string with_rows(const std::string& rows) { return std::string(kHeader) + rows; }

TEST(TraceIoErrors, EmptyTraceIsEmptyWorkload) {
  EXPECT_TRUE(trace_from_csv(kHeader).empty());
  EXPECT_TRUE(trace_from_csv("").empty());
}

TEST(TraceIoErrors, MinimalValidRow) {
  const auto jobs =
      trace_from_csv(with_rows("0,j,app,0,0,map,4,1,2,30,10,\n"));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].phases[0].task_count, 4);
  EXPECT_TRUE(jobs[0].phases[0].parents.empty());
}

TEST(TraceIoErrors, InterleavedJobsRegroup) {
  const auto jobs = trace_from_csv(with_rows(
      "0,a,app,0,0,map,2,1,2,30,0,\n"
      "1,b,app,5,0,map,3,1,2,30,0,\n"
      "0,a,app,0,1,reduce,1,1,2,30,0,0\n"));
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].phases.size(), 2u);
  EXPECT_EQ(jobs[1].phases.size(), 1u);
}

TEST(TraceIoErrors, NonNumericCellThrows) {
  EXPECT_THROW((void)trace_from_csv(with_rows("0,j,app,0,0,map,four,1,2,30,10,\n")),
               std::runtime_error);
  EXPECT_THROW((void)trace_from_csv(with_rows("0,j,app,zero,0,map,4,1,2,30,10,\n")),
               std::runtime_error);
}

TEST(TraceIoErrors, InvalidJobRejectedByValidation) {
  // Zero tasks.
  EXPECT_THROW((void)trace_from_csv(with_rows("0,j,app,0,0,map,0,1,2,30,10,\n")),
               std::invalid_argument);
  // Zero theta.
  EXPECT_THROW((void)trace_from_csv(with_rows("0,j,app,0,0,map,4,1,2,0,10,\n")),
               std::invalid_argument);
  // Forward parent reference (phase 0 cannot depend on phase 1).
  EXPECT_THROW((void)trace_from_csv(with_rows("0,j,app,0,0,map,4,1,2,30,10,1\n"
                                              "0,j,app,0,1,red,1,1,2,30,10,\n")),
               std::invalid_argument);
  // Zero demand.
  EXPECT_THROW((void)trace_from_csv(with_rows("0,j,app,0,0,map,4,0,0,30,10,\n")),
               std::invalid_argument);
}

TEST(TraceIoErrors, MissingColumnThrows) {
  const std::string bad_header = "job_id,job_name,app\n0,j,app\n";
  EXPECT_THROW((void)trace_from_csv(bad_header), std::out_of_range);
}

TEST(TraceIoErrors, RaggedRowThrows) {
  EXPECT_THROW((void)trace_from_csv(with_rows("0,j,app,0,0\n")), std::runtime_error);
}

TEST(TraceIoErrors, MultiParentListParses) {
  const auto jobs = trace_from_csv(with_rows(
      "0,j,app,0,0,scanA,2,1,2,30,0,\n"
      "0,j,app,0,1,scanB,2,1,2,30,0,\n"
      "0,j,app,0,2,join,1,1,2,30,0,0;1\n"));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].phases[2].parents, (std::vector<PhaseIndex>{0, 1}));
}

TEST(TraceIoErrors, QuotedNamesSurvive) {
  const auto jobs = trace_from_csv(with_rows(
      "0,\"job, with comma\",app,0,0,map,1,1,2,30,0,\n"));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].name, "job, with comma");
  // And they survive a round trip.
  const auto again = trace_from_csv(trace_to_csv(jobs));
  EXPECT_EQ(again[0].name, "job, with comma");
}

}  // namespace
}  // namespace dollymp
