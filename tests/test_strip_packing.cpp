#include "dollymp/sched/strip_packing.h"

#include <gtest/gtest.h>

#include "dollymp/common/rng.h"

namespace dollymp {
namespace {

TEST(StripPacking, EmptyInput) {
  const auto packing = nfdh_pack({});
  EXPECT_TRUE(packing.placements.empty());
  EXPECT_DOUBLE_EQ(packing.height, 0.0);
}

TEST(StripPacking, SingleItem) {
  const auto packing = nfdh_pack({{0.5, 3.0}});
  ASSERT_EQ(packing.placements.size(), 1u);
  EXPECT_DOUBLE_EQ(packing.height, 3.0);
  EXPECT_DOUBLE_EQ(packing.placements[0].x, 0.0);
  EXPECT_DOUBLE_EQ(packing.placements[0].y, 0.0);
}

TEST(StripPacking, RejectsBadItems) {
  EXPECT_THROW(nfdh_pack({{0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(nfdh_pack({{1.5, 1.0}}), std::invalid_argument);
  EXPECT_THROW(nfdh_pack({{0.5, 0.0}}), std::invalid_argument);
  EXPECT_THROW(nfdh_pack({{0.5, -1.0}}), std::invalid_argument);
}

TEST(StripPacking, PerfectShelf) {
  // Four quarter-width items of equal height share one shelf.
  const std::vector<StripItem> items(4, {0.25, 2.0});
  const auto packing = nfdh_pack(items);
  EXPECT_DOUBLE_EQ(packing.height, 2.0);
  EXPECT_TRUE(strip_packing_is_feasible(items, packing));
}

TEST(StripPacking, OpensNewShelfWhenFull) {
  // Three items of width 0.4: two fit per shelf.
  const std::vector<StripItem> items(3, {0.4, 1.0});
  const auto packing = nfdh_pack(items);
  EXPECT_DOUBLE_EQ(packing.height, 2.0);
  EXPECT_TRUE(strip_packing_is_feasible(items, packing));
}

TEST(StripPacking, DecreasingHeightOrder) {
  // The tallest item defines the first shelf regardless of input order.
  const std::vector<StripItem> items{{0.3, 1.0}, {0.3, 5.0}, {0.3, 2.0}};
  const auto packing = nfdh_pack(items);
  // All three fit on one shelf of height 5.
  EXPECT_DOUBLE_EQ(packing.height, 5.0);
  EXPECT_TRUE(strip_packing_is_feasible(items, packing));
}

TEST(StripPacking, LowerBounds) {
  const std::vector<StripItem> items{{0.5, 2.0}, {0.5, 4.0}};
  EXPECT_DOUBLE_EQ(strip_area_lower_bound(items), 0.5 * 2.0 + 0.5 * 4.0);
  EXPECT_DOUBLE_EQ(strip_height_lower_bound(items), 4.0);
}

TEST(StripPacking, FeasibilityCheckerCatchesOverlap) {
  const std::vector<StripItem> items{{0.5, 1.0}, {0.5, 1.0}};
  StripPacking bogus;
  bogus.height = 1.0;
  bogus.placements = {{0, 0.0, 0.0}, {1, 0.25, 0.0}};  // overlapping
  EXPECT_FALSE(strip_packing_is_feasible(items, bogus));
  StripPacking good;
  good.height = 1.0;
  good.placements = {{0, 0.0, 0.0}, {1, 0.5, 0.0}};
  EXPECT_TRUE(strip_packing_is_feasible(items, good));
}

TEST(StripPacking, FeasibilityCheckerCatchesOutOfStrip) {
  const std::vector<StripItem> items{{0.6, 1.0}};
  StripPacking bogus;
  bogus.height = 1.0;
  bogus.placements = {{0, 0.5, 0.0}};  // right edge at 1.1
  EXPECT_FALSE(strip_packing_is_feasible(items, bogus));
}

// The Theorem 1 ingredient: NFDH height <= 2*AREA + h_max <= 3*OPT on
// randomized instances.
class StripPackingRandomSweep : public testing::TestWithParam<int> {};

TEST_P(StripPackingRandomSweep, GuaranteeHolds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.range(1, 40));
    std::vector<StripItem> items;
    items.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      items.push_back({rng.uniform(0.01, 1.0), rng.uniform(0.1, 10.0)});
    }
    const auto packing = nfdh_pack(items);
    ASSERT_TRUE(strip_packing_is_feasible(items, packing));
    const double area = strip_area_lower_bound(items);
    const double tallest = strip_height_lower_bound(items);
    ASSERT_LE(packing.height, 2.0 * area + tallest + 1e-9)
        << "NFDH guarantee violated (n=" << n << ")";
    // And hence <= 3 * OPT since OPT >= max(area, tallest).
    ASSERT_LE(packing.height, 3.0 * std::max(area, tallest) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StripPackingRandomSweep, testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dollymp
