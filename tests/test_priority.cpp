#include "dollymp/sched/priority.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "dollymp/common/rng.h"

namespace dollymp {
namespace {

PriorityJobInput job(double volume, double length, double dominant = 0.1) {
  return {volume, length, dominant};
}

TEST(Priority, EmptyInput) {
  const auto result = compute_transient_priorities({});
  EXPECT_TRUE(result.priority.empty());
}

TEST(Priority, EveryJobGetsAClass) {
  Rng rng(3);
  std::vector<PriorityJobInput> jobs;
  for (int i = 0; i < 100; ++i) {
    jobs.push_back(job(rng.uniform(0.1, 50.0), rng.uniform(0.5, 200.0),
                       rng.uniform(0.001, 0.9)));
  }
  const auto result = compute_transient_priorities(jobs);
  ASSERT_EQ(result.priority.size(), jobs.size());
  for (const int p : result.priority) {
    EXPECT_GE(p, 1);
  }
}

TEST(Priority, ShortSmallJobsComeFirst) {
  // One tiny job and one huge job: the tiny one must get a strictly
  // smaller class.
  const auto result = compute_transient_priorities(
      {job(100.0, 300.0), job(0.5, 1.0)});
  ASSERT_EQ(result.priority.size(), 2u);
  EXPECT_LT(result.priority[1], result.priority[0]);
}

TEST(Priority, EqualJobsFillAClassUpToItsBudget) {
  // Three equal jobs (v = 2, e = 4).  Round 2 (budget 4) admits exactly two
  // of them; the third spills into round 3 — the knapsack budget, not job
  // identity, decides class membership.
  const auto result = compute_transient_priorities(
      {job(2.0, 4.0), job(2.0, 4.0), job(2.0, 4.0)});
  EXPECT_EQ(result.priority[0], 2);
  EXPECT_EQ(result.priority[1], 2);
  EXPECT_EQ(result.priority[2], 3);
}

TEST(Priority, LongJobExcludedFromEarlyRounds) {
  // length 100 keeps the job out of B_l until 2^l >= 100 (l = 7), even
  // though its volume is tiny.
  const auto result = compute_transient_priorities({job(0.1, 100.0), job(0.1, 1.0)});
  EXPECT_EQ(result.priority[1], 1);
  EXPECT_GE(result.priority[0], 7);
}

TEST(Priority, KnapsackLimitsClassCapacity) {
  // Round l has volume budget 2^l.  Three jobs with volume 1.5 and length 1:
  // round 1 (budget 2) fits only one; round 2 (budget 4) fits two; the
  // third waits for round 3.
  const auto result = compute_transient_priorities(
      {job(1.5, 1.0), job(1.5, 1.0), job(1.5, 1.0)});
  std::vector<int> classes = result.priority;
  std::sort(classes.begin(), classes.end());
  EXPECT_EQ(classes, (std::vector<int>{1, 2, 3}));
}

TEST(Priority, SmallestVolumeWinsWithinARound) {
  // Budget 2 in round 1: volumes 1.9 and 0.3 both have length <= 2 but only
  // sum 2.2 > 2; the knapsack takes the smaller one (count 1 either way,
  // smallest weight first).
  const auto result = compute_transient_priorities({job(1.9, 1.0), job(0.3, 1.0)});
  EXPECT_EQ(result.priority[1], 1);
  EXPECT_GT(result.priority[0], 1);
}

TEST(Priority, DominantShareExtendsHorizon) {
  // Same volumes, but a near-1 dominant share shrinks the (1 - max d)
  // margin, growing g; priorities must still be assigned.
  const auto result = compute_transient_priorities(
      {job(4.0, 8.0, 0.999999), job(1.0, 1.0, 0.5)});
  for (const int p : result.priority) {
    EXPECT_GE(p, 1);
  }
}

TEST(Priority, RejectsNegativeInputs) {
  EXPECT_THROW(compute_transient_priorities({job(-1.0, 1.0)}), std::invalid_argument);
  EXPECT_THROW(compute_transient_priorities({job(1.0, -1.0)}), std::invalid_argument);
}

TEST(Priority, PriorityIsMonotoneInVolume) {
  // With identical lengths, a strictly larger volume can never produce a
  // strictly smaller class (the greedy oracle picks smaller volumes first).
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<PriorityJobInput> jobs;
    const int n = 8;
    for (int i = 0; i < n; ++i) jobs.push_back(job(rng.uniform(0.1, 10.0), 2.0));
    const auto result = compute_transient_priorities(jobs);
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < n; ++k) {
        if (jobs[i].volume < jobs[k].volume) {
          ASSERT_LE(result.priority[i], result.priority[k])
              << "volume " << jobs[i].volume << " vs " << jobs[k].volume;
        }
      }
    }
  }
}

// ---- weighted variant -------------------------------------------------------

WeightedPriorityJobInput wjob(double volume, double length, double weight,
                              double dominant = 0.1) {
  return {volume, length, dominant, weight};
}

TEST(WeightedPriority, EqualWeightsMatchUnitOracleClassSizes) {
  Rng rng(41);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 10;
    std::vector<PriorityJobInput> unit;
    std::vector<WeightedPriorityJobInput> weighted;
    for (int i = 0; i < n; ++i) {
      const double v = rng.uniform(0.1, 8.0);
      const double e = rng.uniform(0.5, 60.0);
      unit.push_back({v, e, 0.1});
      weighted.push_back(wjob(v, e, 1.0));
    }
    const auto a = compute_transient_priorities(unit);
    const auto b = compute_weighted_transient_priorities(weighted);
    // Multiple optimal sets may exist, so compare how many jobs land in
    // each class, not the identity of the jobs.
    std::map<int, int> count_a;
    std::map<int, int> count_b;
    for (const int p : a.priority) ++count_a[p];
    for (const int p : b.priority) ++count_b[p];
    ASSERT_EQ(count_a, count_b) << "trial " << trial;
  }
}

TEST(WeightedPriority, HeavyWeightDisplacesLightOnes) {
  // Round 1 budget = 2.  Two light jobs (v = 1 each, w = 1) fit together
  // (total weight 2); one heavy-weight job (v = 2, w = 5) fills the budget
  // alone with more weight — the weighted oracle must pick it first.
  const auto result = compute_weighted_transient_priorities(
      {wjob(1.0, 1.0, 1.0), wjob(1.0, 1.0, 1.0), wjob(2.0, 1.0, 5.0)});
  EXPECT_EQ(result.priority[2], 1);
  EXPECT_GT(result.priority[0], 1);
  EXPECT_GT(result.priority[1], 1);
}

TEST(WeightedPriority, ValidatesWeights) {
  EXPECT_THROW(compute_weighted_transient_priorities({wjob(1.0, 1.0, 0.0)}),
               std::invalid_argument);
  EXPECT_THROW(compute_weighted_transient_priorities({wjob(1.0, 1.0, -2.0)}),
               std::invalid_argument);
  EXPECT_THROW(compute_weighted_transient_priorities({wjob(-1.0, 1.0, 1.0)}),
               std::invalid_argument);
}

TEST(WeightedPriority, AllJobsAssigned) {
  Rng rng(43);
  std::vector<WeightedPriorityJobInput> jobs;
  for (int i = 0; i < 60; ++i) {
    jobs.push_back(wjob(rng.uniform(0.1, 20.0), rng.uniform(0.5, 300.0),
                        rng.uniform(0.1, 10.0), rng.uniform(0.0, 0.5)));
  }
  const auto result = compute_weighted_transient_priorities(jobs);
  for (const int p : result.priority) {
    EXPECT_GE(p, 1);
  }
}

// Parameterized sweep: the number of distinct classes grows with load but
// assignment never fails across workload scales.
class PriorityScaleSweep : public testing::TestWithParam<int> {};

TEST_P(PriorityScaleSweep, AssignsAllAtEveryScale) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  std::vector<PriorityJobInput> jobs;
  for (int i = 0; i < n; ++i) {
    jobs.push_back(job(rng.uniform(0.01, 20.0), rng.uniform(0.5, 500.0),
                       rng.uniform(0.0, 0.5)));
  }
  const auto result = compute_transient_priorities(jobs);
  ASSERT_EQ(result.priority.size(), static_cast<std::size_t>(n));
  for (const int p : result.priority) {
    ASSERT_GE(p, 1);
    ASSERT_LE(p, 64);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, PriorityScaleSweep,
                         testing::Values(1, 2, 5, 10, 50, 200, 1000));

}  // namespace
}  // namespace dollymp
