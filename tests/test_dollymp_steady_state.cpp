// Steady-state allocation audit for the DollyMP hot loop.
//
// The tentpole's churn-kill contract: once its reused buffers are warm, a
// DollyMPScheduler::schedule() invocation performs ZERO heap allocations —
// no hash-map rehashes, no per-call order/candidate vectors, no
// stable_sort scratch.  Enforced with a counting global operator new over
// a fake context whose own placement path is also allocation-free after
// warm-up (copy vectors pre-reserved).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/cluster/placement_index.h"
#include "dollymp/common/rng.h"
#include "dollymp/job/job.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/runtime_state.h"
#include "dollymp/sim/runtime_store.h"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dollymp {
namespace {

/// Count heap allocations performed by `fn`.
template <typename Fn>
std::uint64_t allocations_during(Fn&& fn) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  fn();
  g_counting.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

/// Minimal stand-alone SchedulerContext (the bench DryRunContext pattern):
/// placements allocate real server capacity and copy records but generate
/// no events; time never advances.
class FakeContext final : public SchedulerContext {
 public:
  FakeContext(Cluster cluster, std::vector<JobSpec> jobs, const SimConfig& config,
              bool with_index)
      : cluster_(std::move(cluster)),
        config_(config),
        locality_(config.locality, cluster_),
        specs_(std::move(jobs)) {
    Rng rng(config_.seed);
    store_.reserve_for(specs_);
    for (const auto& spec : specs_) {
      const std::size_t idx =
          store_.materialize(spec, config_.slot_seconds, locality_, rng);
      jobs_[idx].arrived = true;
    }
    active_.reserve(jobs_.size());
    for (auto& job : jobs_) {
      active_.push_back(&job);
      // Pre-reserve copy storage so steady-state placements never grow it.
      for (auto& phase : job.phases) {
        for (auto& task : phase.tasks) task.copies.reserve(8);
      }
    }
    if (with_index) index_.emplace(cluster_);
  }

  [[nodiscard]] SimTime now() const override { return 0; }
  [[nodiscard]] double slot_seconds() const override { return config_.slot_seconds; }
  [[nodiscard]] const Cluster& cluster() const override { return cluster_; }
  [[nodiscard]] const SimConfig& config() const override { return config_; }
  [[nodiscard]] const std::vector<JobRuntime*>& active_jobs() override { return active_; }
  [[nodiscard]] Rng& policy_rng() override { return rng_; }
  [[nodiscard]] PlacementIndex* placement_index() override {
    return index_ ? &*index_ : nullptr;
  }

  bool place_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                  ServerId server_id) override {
    if (job.finished || !phase.runnable() || task.finished) return false;
    if (task.total_copies() >= config_.max_copies_per_task) return false;
    Server& server = cluster_.server(static_cast<std::size_t>(server_id));
    if (!server.allocate(task.demand)) return false;
    if (index_) index_->on_allocation_changed(server_id);
    const bool first_copy = task.copies.empty();
    CopyRuntime copy;
    copy.server = server_id;
    copy.start = 0;
    copy.active = true;
    task.copies.push_back(copy);
    ++phase.active_copies;
    if (first_copy) {
      --phase.unscheduled_tasks;
      task.first_start = 0;
    }
    return true;
  }
  bool place_speculative_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                              ServerId server) override {
    return place_copy(job, phase, task, server);
  }
  void request_wakeup(SimTime /*slot*/) override {}

  /// Undo every placement so the next schedule() round starts from
  /// scratch with warm buffers.
  void reset_placements() {
    cluster_.reset_allocations();
    for (auto& job : jobs_) {
      for (auto& phase : job.phases) {
        for (auto& task : phase.tasks) {
          task.copies.clear();
          task.first_start = kNever;
        }
        phase.active_copies = 0;
        phase.unscheduled_tasks = phase.spec->task_count;
        phase.first_unscheduled_hint = 0;
      }
      job.first_start = kNever;
    }
    if (index_) {
      for (std::size_t i = 0; i < cluster_.size(); ++i) {
        index_->on_allocation_changed(static_cast<ServerId>(i));
      }
    }
  }

 private:
  Cluster cluster_;
  SimConfig config_;
  LocalityModel locality_;
  Rng rng_{7};
  std::vector<JobSpec> specs_;
  RuntimeStore store_;
  std::vector<JobRuntime>& jobs_ = store_.jobs();
  std::vector<JobRuntime*> active_;
  std::optional<PlacementIndex> index_;
};

std::vector<JobSpec> small_workload(int count) {
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 6, {1, 1}, 20.0, 30.0));
  }
  return jobs;
}

SimConfig steady_config() {
  SimConfig config;
  config.slot_seconds = 1.0;
  config.seed = 5;
  config.background.enabled = false;
  config.locality.enabled = false;
  return config;
}

void expect_steady_state_allocation_free(DollyMPConfig scheduler_config, bool with_index) {
  FakeContext ctx(Cluster::paper30(), small_workload(6), steady_config(), with_index);
  DollyMPScheduler scheduler(scheduler_config);
  scheduler.on_job_arrival(ctx);  // priority recompute: allocs allowed here

  // Warm-up: populates order_/candidates_ buffers and the copy vectors.
  scheduler.schedule(ctx);
  // Second warm-up on a fresh placement state, so every container any
  // schedule() round touches has reached steady-state capacity.
  ctx.reset_placements();
  scheduler.schedule(ctx);

  // Round three, same shape as round two: must not allocate at all.
  ctx.reset_placements();
  const std::uint64_t fresh = allocations_during([&] { scheduler.schedule(ctx); });
  EXPECT_EQ(fresh, 0u) << "schedule() on a drained cluster allocated";

  // And again with copies already running (the clone-candidate path).
  const std::uint64_t running = allocations_during([&] { scheduler.schedule(ctx); });
  EXPECT_EQ(running, 0u) << "schedule() with running copies allocated";
}

TEST(DollyMPSteadyState, ScheduleIsAllocationFreeWithIndex) {
  expect_steady_state_allocation_free({}, /*with_index=*/true);
}

TEST(DollyMPSteadyState, ScheduleIsAllocationFreeLinearFallback) {
  expect_steady_state_allocation_free({}, /*with_index=*/false);
}

TEST(DollyMPSteadyState, ScheduleIsAllocationFreeCorollaryClones) {
  DollyMPConfig config;
  config.corollary_clone_counts = true;
  expect_steady_state_allocation_free(config, /*with_index=*/true);
}

}  // namespace
}  // namespace dollymp
