// Validation of the paper's analytical results (Section 4).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dollymp/common/distributions.h"
#include "dollymp/common/rng.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/simulator.h"

namespace dollymp {
namespace {

// ---- Section 4.1: when is cloning helpful? ---------------------------------
//
// N single-task jobs arrive at t = 0 on a unit-capacity cluster; job j
// demands 1/2^j of each resource and has unit expected duration.  The paper
// compares three schemes:
//   flow1 = N - 1 + 1/h(2)            (schedule all, clone only job N)
//   flow2 = sum_j j / h(2^j)          (serial, clone aggressively)
//   flow3 <= (N + 1) / h(2)           (two clones each, smallest first)
// and shows flow3 < flow1 < flow2 when the Pareto shape conditions hold.

double flow1(int n, const SpeedupFunction& h) {
  return static_cast<double>(n) - 1.0 + 1.0 / h(2.0);
}

double flow2(int n, const SpeedupFunction& h) {
  double total = 0.0;
  for (int j = 1; j <= n; ++j) {
    total += static_cast<double>(j) / h(std::ldexp(1.0, j));
  }
  return total;
}

double flow3(int n, const SpeedupFunction& h) {
  return static_cast<double>(n + 1) / h(2.0);
}

TEST(Section41, FlowOrderingForPaperConditions) {
  // alpha = 2 gives h(2) = 1.5; conditions j >= alpha/(alpha-1) = 2 and
  // N > 2*alpha - 1 = 3 hold for N = 8.
  const SpeedupFunction h(2.0);
  const int n = 8;
  const double f1 = flow1(n, h);
  const double f2 = flow2(n, h);
  const double f3 = flow3(n, h);
  EXPECT_LT(f3, f1);
  EXPECT_LT(f1, f2);
  // Spot values.
  EXPECT_NEAR(f1, 7.0 + 1.0 / 1.5, 1e-12);
  EXPECT_NEAR(f3, 9.0 / 1.5, 1e-12);
}

TEST(Section41, ConditionBoundaries) {
  // h_j(2^j) < j iff j >= alpha/(alpha-1): check both sides for alpha = 1.5
  // (ratio 3).
  const double alpha = 1.5;
  const SpeedupFunction h(alpha);
  // j = 3 = alpha/(alpha-1): h(8) = 1 + (1 - 1/8)/0.5 = 2.75 < 3.
  EXPECT_LT(h(8.0), 3.0);
  // j = 2 < alpha/(alpha-1): h(4) = 1 + 0.75/0.5 = 2.5 > 2 (condition fails
  // below the threshold, as the paper requires).
  EXPECT_GT(h(4.0), 2.0);
  // h(2) > N/(N-1) requires N > 2*alpha - 1 = 2: with N = 3,
  // h(2) = 1 + 0.5/0.5 = 2.0 > 3/2.
  EXPECT_GT(h(2.0), 3.0 / 2.0);
}

class Section41AlphaSweep : public testing::TestWithParam<double> {};

TEST_P(Section41AlphaSweep, OrderingHoldsAcrossShapes) {
  const double alpha = GetParam();
  const SpeedupFunction h(alpha);
  const int n = std::max(8, static_cast<int>(std::ceil(2.0 * alpha)) + 2);
  EXPECT_LT(flow3(n, h), flow1(n, h)) << "alpha=" << alpha;
  EXPECT_LT(flow1(n, h), flow2(n, h)) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Shapes, Section41AlphaSweep,
                         testing::Values(1.5, 2.0, 2.5, 3.0, 4.0));

// The same three schemes executed in the simulator's work-based model must
// reproduce the analytic totals (up to slot rounding).
TEST(Section41, SimulatedSchemesMatchAnalysis) {
  // Use alpha = 2 (cv -> infinity is unreachable through from_stats, so we
  // drive the speedup via explicit sigma giving alpha = 2.5: cv^2 =
  // 1/(2.5*0.5) = 0.8).
  const double alpha = 2.5;
  const double theta = 64.0;  // seconds; 1-second slots keep rounding mild
  const double cv = std::sqrt(1.0 / (alpha * (alpha - 2.0)));
  const SpeedupFunction h(alpha);
  const int n = 4;

  // Scheme "clone two each, smallest first" (flow3's scheme) — jobs 2..N
  // run together with 2 copies (wait: the paper uses 1 extra clone => 2
  // copies).  Simulate with DollyMP^1 which clones whenever resources are
  // idle; on this workload all jobs plus one clone each fit the server
  // simultaneously (sum of 2/2^j <= 1 for j >= 1 ... only for j >= 2), so
  // we simply check the simulated total is within the analytic envelope
  // [flow3 * theta, flow1 * theta].
  std::vector<JobSpec> jobs;
  for (int j = 1; j <= n; ++j) {
    const double share = std::ldexp(1.0, -j);  // 1/2^j
    jobs.push_back(JobSpec::single_task(j, {share, share}, theta, cv * theta));
  }
  SimConfig config;
  config.slot_seconds = 1.0;
  config.seed = 3;
  config.model = ExecutionModel::kWorkBased;
  config.background.enabled = false;
  config.locality.enabled = false;

  DollyMPScheduler d1{DollyMPConfig{1}};
  const SimResult result = simulate(Cluster::single({1, 1}), config, jobs, d1);
  const double simulated = result.total_flowtime();
  // All four jobs run concurrently from t=0 with at least one copy, so the
  // worst case is every job at h(1): flow <= n * theta; with clones the
  // total must beat the no-clone concurrent bound and stay above the
  // theoretical floor where every job enjoys h(2) the whole time.
  EXPECT_LE(simulated, static_cast<double>(n) * theta + 4.0);
  EXPECT_GE(simulated, static_cast<double>(n) * theta / h(2.0) - 4.0);
}

// ---- Theorem 1: 6R-competitiveness of Algorithm 1 --------------------------
//
// Single server, single-task jobs, batch arrival, deterministic durations
// (R = 1 since h == 1).  Compare DollyMP^0 under the work-based model to
// the best schedule found by exhaustive permutation search with greedy
// earliest-feasible placement (an upper bound on OPT, making the check
// conservative in the right direction: measured_ratio <= ratio_vs_OPT).

struct Instance {
  std::vector<Resources> demands;
  std::vector<SimTime> durations;
};

double permutation_best_flowtime(const Instance& inst) {
  const int n = static_cast<int>(inst.demands.size());
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    // Greedy: start each job at the earliest slot where it fits for its
    // whole duration, given previously placed jobs.
    SimTime horizon = 0;
    for (const auto d : inst.durations) horizon += d;
    std::vector<Resources> used(static_cast<std::size_t>(horizon) + 1);
    double total_flow = 0.0;
    for (const int j : perm) {
      SimTime start = 0;
      for (;;) {
        bool fits = true;
        for (SimTime t = start; t < start + inst.durations[j]; ++t) {
          if (!(used[static_cast<std::size_t>(t)] + inst.demands[j])
                   .fits_within({1.0, 1.0})) {
            fits = false;
            break;
          }
        }
        if (fits) break;
        ++start;
      }
      for (SimTime t = start; t < start + inst.durations[j]; ++t) {
        used[static_cast<std::size_t>(t)] += inst.demands[j];
      }
      total_flow += static_cast<double>(start + inst.durations[j]);
    }
    best = std::min(best, total_flow);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Theorem1, CompetitiveRatioWithinSixR) {
  Rng rng(99);
  const double demands_grid[] = {0.25, 0.5, 1.0};
  double worst_ratio = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    Instance inst;
    const int n = static_cast<int>(rng.range(2, 6));
    std::vector<JobSpec> jobs;
    for (int j = 0; j < n; ++j) {
      const double c = demands_grid[rng.below(3)];
      const double m = demands_grid[rng.below(3)];
      const auto dur = static_cast<SimTime>(rng.range(1, 4));
      inst.demands.push_back({c, m});
      inst.durations.push_back(dur);
      jobs.push_back(
          JobSpec::single_task(j, {c, m}, static_cast<double>(dur), 0.0));
    }
    const double opt_upper = permutation_best_flowtime(inst);

    SimConfig config;
    config.slot_seconds = 1.0;
    config.seed = 1;
    config.model = ExecutionModel::kWorkBased;
    config.background.enabled = false;
    config.locality.enabled = false;
    DollyMPScheduler d0{DollyMPConfig{0}};
    const SimResult result = simulate(Cluster::single({1, 1}), config, jobs, d0);

    const double ratio = result.total_flowtime() / opt_upper;
    worst_ratio = std::max(worst_ratio, ratio);
    ASSERT_LE(ratio, 6.0 + 1e-9)
        << "Theorem 1 bound violated on trial " << trial << " (n=" << n << ")";
  }
  // The bound should not be vacuous — the algorithm is usually near optimal.
  EXPECT_LE(worst_ratio, 3.0);
}

// Corollary 4.1 ingredient: r_j = min{r : 2^l h(r) >= theta} computed by
// SpeedupFunction::min_copies_for is consistent with the definition.
TEST(Corollary41, CloneCountDefinition) {
  const SpeedupFunction h(2.0);
  for (const double budget : {1.0, 2.0, 4.0, 8.0}) {
    for (double theta = 0.5; theta <= 2.0 * budget; theta += 0.25) {
      const int r = h.min_copies_for(theta, budget);
      if (r == 0) {
        // Unreachable even in the limit.
        EXPECT_GE(theta, budget * h.upper_bound() - 1e-9);
      } else {
        EXPECT_GE(budget * h(r), theta - 1e-9);
        if (r > 1) {
          EXPECT_LT(budget * h(r - 1), theta + 1e-9);
        }
      }
    }
  }
}

}  // namespace
}  // namespace dollymp
