// The optional simulator event trace (SimConfig::record_events).
#include <gtest/gtest.h>

#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/simulator.h"

namespace dollymp {
namespace {

SimConfig traced_config(std::uint64_t seed = 1) {
  SimConfig config;
  config.slot_seconds = 1.0;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  config.record_events = true;
  return config;
}

long long count(const SimResult& r, SimEventKind kind) {
  long long n = 0;
  for (const auto& e : r.events) n += e.kind == kind ? 1 : 0;
  return n;
}

TEST(EventTrace, DisabledByDefault) {
  const Cluster cluster = Cluster::single({4, 4});
  SimConfig config = traced_config();
  config.record_events = false;
  DollyMPScheduler scheduler;
  const SimResult result =
      simulate(cluster, config, {JobSpec::single_task(0, {1, 1}, 5.0)}, scheduler);
  EXPECT_TRUE(result.events.empty());
}

TEST(EventTrace, CountsMatchAggregates) {
  const Cluster cluster = Cluster::uniform(6, {8, 16});
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 4, {1, 2}, 20.0, 15.0, i * 10.0));
  }
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, traced_config(3), jobs, scheduler);

  EXPECT_EQ(count(result, SimEventKind::kJobArrival), 5);
  EXPECT_EQ(count(result, SimEventKind::kJobCompleted), 5);
  EXPECT_EQ(count(result, SimEventKind::kPhaseCompleted), 5);
  EXPECT_EQ(count(result, SimEventKind::kTaskCompleted), result.total_tasks_completed);
  // Every launched copy appears exactly once as a placement event...
  const long long placements = count(result, SimEventKind::kCopyPlaced) +
                               count(result, SimEventKind::kClonePlaced) +
                               count(result, SimEventKind::kSpeculativePlaced);
  EXPECT_EQ(placements, result.total_copies_launched);
  // ...and exactly once as finished or killed.
  const long long endings = count(result, SimEventKind::kCopyFinished) +
                            count(result, SimEventKind::kCopyKilled);
  EXPECT_EQ(endings, result.total_copies_launched);
}

TEST(EventTrace, TimeOrdered) {
  const Cluster cluster = Cluster::paper30();
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 5, {1, 2}, 25.0, 20.0, i * 7.0));
  }
  DollyMPScheduler scheduler;
  SimConfig config = traced_config(5);
  config.slot_seconds = 5.0;
  const SimResult result = simulate(cluster, config, jobs, scheduler);
  ASSERT_FALSE(result.events.empty());
  for (std::size_t i = 1; i < result.events.size(); ++i) {
    ASSERT_GE(result.events[i].seconds, result.events[i - 1].seconds);
  }
}

TEST(EventTrace, CausalOrderPerTask) {
  const Cluster cluster = Cluster::single({2, 2});
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, traced_config(7),
                                    {JobSpec::single_task(0, {1, 1}, 8.0)}, scheduler);
  double placed = -1.0;
  double finished = -1.0;
  double completed = -1.0;
  for (const auto& e : result.events) {
    if (e.kind == SimEventKind::kCopyPlaced) placed = e.seconds;
    if (e.kind == SimEventKind::kCopyFinished) finished = e.seconds;
    if (e.kind == SimEventKind::kTaskCompleted) completed = e.seconds;
  }
  ASSERT_GE(placed, 0.0);
  EXPECT_GT(finished, placed);
  EXPECT_DOUBLE_EQ(completed, finished);
}

TEST(EventTrace, ClonesAppearAsCloneEvents) {
  const Cluster cluster = Cluster::uniform(4, {4, 4});
  DollyMPScheduler scheduler;  // budget 2, idle cluster -> launch-time clones
  const SimResult result = simulate(cluster, traced_config(9),
                                    {JobSpec::single_task(0, {1, 1}, 20.0, 15.0)},
                                    scheduler);
  EXPECT_EQ(count(result, SimEventKind::kClonePlaced), 2);
  EXPECT_EQ(count(result, SimEventKind::kCopyKilled), 2)
      << "both clones are killed when the first copy finishes";
}

TEST(EventTrace, FailureEventsRecorded) {
  const Cluster cluster = Cluster::uniform(4, {8, 16});
  SimConfig config = traced_config(11);
  config.slot_seconds = 5.0;
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = 120.0;
  config.failures.mean_repair_seconds = 60.0;
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 4, {1, 2}, 40.0, 10.0, i * 30.0));
  }
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, config, jobs, scheduler);
  EXPECT_GT(count(result, SimEventKind::kServerFailed), 0);
  EXPECT_GT(count(result, SimEventKind::kServerRepaired), 0);
}

TEST(EventTrace, KindNames) {
  EXPECT_STREQ(to_string(SimEventKind::kJobArrival), "job-arrival");
  EXPECT_STREQ(to_string(SimEventKind::kClonePlaced), "clone-placed");
  EXPECT_STREQ(to_string(SimEventKind::kServerFailed), "server-failed");
  EXPECT_STREQ(to_string(SimEventKind::kJobCompleted), "job-completed");
}

}  // namespace
}  // namespace dollymp
