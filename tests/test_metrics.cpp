// Metrics layer: records, summaries, CSV export, paired ratios.
#include <gtest/gtest.h>

#include "dollymp/common/csv.h"
#include "dollymp/metrics/report.h"

namespace dollymp {
namespace {

JobRecord job_record(JobId id, double arrival, double start, double finish,
                     double resources = 1.0, int clones = 0) {
  JobRecord j;
  j.id = id;
  j.name = "job-" + std::to_string(id);
  j.app = "test";
  j.arrival_seconds = arrival;
  j.first_start_seconds = start;
  j.finish_seconds = finish;
  j.total_tasks = 2;
  j.clones_launched = clones;
  j.resource_seconds = resources;
  return j;
}

SimResult small_result() {
  SimResult r;
  r.scheduler = "test-sched";
  r.slot_seconds = 1.0;
  r.jobs.push_back(job_record(0, 0.0, 0.0, 10.0, 2.0, 1));
  r.jobs.push_back(job_record(1, 5.0, 8.0, 25.0, 4.0, 0));
  r.jobs.push_back(job_record(2, 10.0, 12.0, 18.0, 1.0, 2));
  r.makespan_seconds = 25.0;
  return r;
}

TEST(Records, DerivedQuantities) {
  const JobRecord j = job_record(0, 5.0, 8.0, 25.0);
  EXPECT_DOUBLE_EQ(j.flowtime(), 20.0);
  EXPECT_DOUBLE_EQ(j.running_time(), 17.0);
  EXPECT_DOUBLE_EQ(j.wait_time(), 3.0);
}

TEST(Records, Aggregates) {
  const SimResult r = small_result();
  EXPECT_DOUBLE_EQ(r.total_flowtime(), 10.0 + 20.0 + 8.0);
  EXPECT_DOUBLE_EQ(r.mean_flowtime(), 38.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.total_resource_seconds(), 7.0);
  // tasks_with_clones defaults to 0 in these records -> fraction 0.
  EXPECT_DOUBLE_EQ(r.cloned_task_fraction(), 0.0);
}

TEST(Records, EmptyResultAggregates) {
  const SimResult r;
  EXPECT_DOUBLE_EQ(r.total_flowtime(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_flowtime(), 0.0);
  EXPECT_DOUBLE_EQ(r.cloned_task_fraction(), 0.0);
}

TEST(Summary, MatchesRecords) {
  const SimResult r = small_result();
  const RunSummary s = summarize(r);
  EXPECT_EQ(s.scheduler, "test-sched");
  EXPECT_EQ(s.jobs, 3u);
  EXPECT_DOUBLE_EQ(s.total_flowtime, r.total_flowtime());
  EXPECT_DOUBLE_EQ(s.makespan, 25.0);
  EXPECT_EQ(s.clones_launched, 3);
  EXPECT_DOUBLE_EQ(s.p95_flowtime, 20.0);
}

TEST(Cdfs, FlowAndRunning) {
  const SimResult r = small_result();
  EXPECT_DOUBLE_EQ(flowtime_cdf(r).median(), 10.0);
  EXPECT_DOUBLE_EQ(running_time_cdf(r).median(), 10.0);
  EXPECT_DOUBLE_EQ(flowtime_cdf(r).max(), 20.0);
}

TEST(CumulativeSeries, OrderedByArrival) {
  SimResult r = small_result();
  // Shuffle record order; the series must re-sort by arrival.
  std::swap(r.jobs[0], r.jobs[2]);
  const auto series = cumulative_flowtime_series(r);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].first, 0.0);
  EXPECT_DOUBLE_EQ(series[0].second, 10.0);
  EXPECT_DOUBLE_EQ(series[2].second, 38.0);
}

TEST(PairedRatios, ComputesPerJobRatios) {
  const SimResult a = small_result();
  SimResult b = small_result();
  for (auto& j : b.jobs) j.finish_seconds *= 2.0;  // b twice as slow
  const PairedRatios ratios = paired_ratios(a, b);
  ASSERT_EQ(ratios.flowtime_ratio.count(), 3u);
  EXPECT_LT(ratios.flowtime_ratio.max(), 1.0);
  EXPECT_DOUBLE_EQ(ratios.resource_ratio.median(), 1.0);
}

TEST(PairedRatios, ReductionFraction) {
  const SimResult a = small_result();
  SimResult b = small_result();
  for (auto& j : b.jobs) j.finish_seconds = j.arrival_seconds + j.flowtime() * 10.0;
  const PairedRatios ratios = paired_ratios(a, b);
  EXPECT_DOUBLE_EQ(ratios.fraction_flowtime_reduced_by(0.5), 1.0);
  EXPECT_DOUBLE_EQ(ratios.fraction_flowtime_reduced_by(0.95), 0.0);
}

TEST(ResultsCsv, RoundTripThroughCsvTable) {
  const SimResult r = small_result();
  const std::string csv = results_to_csv(r);
  const CsvTable table = CsvTable::parse(csv);
  ASSERT_EQ(table.rows(), 3u);
  EXPECT_EQ(table.cell_int(0, "job_id"), 0);
  EXPECT_EQ(table.cell(1, "name"), "job-1");
  EXPECT_DOUBLE_EQ(table.cell_double(1, "flowtime_s"), 20.0);
  EXPECT_DOUBLE_EQ(table.cell_double(2, "running_s"), 6.0);
  EXPECT_EQ(table.cell_int(0, "clones"), 1);
  EXPECT_DOUBLE_EQ(table.cell_double(1, "resource_s"), 4.0);
}

TEST(ResultsCsv, SaveToFile) {
  const std::string path = testing::TempDir() + "/dollymp_results_test.csv";
  save_results(small_result(), path);
  const CsvTable table = CsvTable::load(path);
  EXPECT_EQ(table.rows(), 3u);
  EXPECT_THROW(save_results(small_result(), "/nonexistent/dir/x.csv"),
               std::runtime_error);
}

TEST(Render, SummariesAndCdfRows) {
  const std::string table = render_summaries({summarize(small_result())});
  EXPECT_NE(table.find("test-sched"), std::string::npos);
  const std::string rows = render_cdf_rows("flow", flowtime_cdf(small_result()));
  EXPECT_NE(rows.find("flow:"), std::string::npos);
  EXPECT_NE(rows.find("p100"), std::string::npos);
}

TEST(MeanFlowtimeReduction, GuardsZeroBaseline) {
  SimResult empty;
  EXPECT_DOUBLE_EQ(mean_flowtime_reduction(small_result(), empty), 0.0);
}

}  // namespace
}  // namespace dollymp
