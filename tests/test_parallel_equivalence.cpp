// Differential matrix for the deterministic parallel scheduling core.
//
// The contract under test: a run with SimConfig::threads = N produces the
// SAME simulation as threads = 1 — the flight-recorder streams are
// bit-identical record for record, and every SimStats counter that
// describes the simulated world (events, placements, kills, index
// activity, recorder hash) is equal.  Only the parallel_* instrumentation
// (which legitimately depends on shard geometry) and wall clock may
// differ.  The matrix covers every scheduler policy, both inventories
// (paper Table 1 and the 3K google-trace machine mix), and fault
// injection on/off, for thread counts 2, 4 and 8 against the sequential
// reference.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dollymp/cluster/placement_index.h"
#include "dollymp/common/thread_pool.h"
#include "dollymp/obs/replay.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/carbyne.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/hopper.h"
#include "dollymp/sched/priority.h"
#include "dollymp/sched/simple_priority.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/workload/arrivals.h"

namespace dollymp {
namespace {

std::vector<JobSpec> matrix_workload(unsigned seed, int jobs_count) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < jobs_count; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 8, {1, 1}, 20.0, 30.0));
  }
  assign_poisson_arrivals(jobs, 15.0, seed + 100);
  return jobs;
}

struct PolicyEntry {
  const char* name;
  SchedulerFactory factory;
};

std::vector<PolicyEntry> all_policies() {
  std::vector<PolicyEntry> policies;
  policies.push_back({"capacity", [] { return std::make_unique<CapacityScheduler>(); }});
  policies.push_back({"drf", [] { return std::make_unique<DrfScheduler>(); }});
  policies.push_back({"tetris", [] { return std::make_unique<TetrisScheduler>(); }});
  policies.push_back({"carbyne", [] { return std::make_unique<CarbyneScheduler>(); }});
  policies.push_back({"srpt", [] {
                        SimplePriorityConfig config;
                        config.rule = SimplePriorityRule::kSrpt;
                        return std::make_unique<SimplePriorityScheduler>(config);
                      }});
  policies.push_back({"svf", [] {
                        SimplePriorityConfig config;
                        config.rule = SimplePriorityRule::kSvf;
                        return std::make_unique<SimplePriorityScheduler>(config);
                      }});
  policies.push_back({"hopper", [] { return std::make_unique<HopperScheduler>(); }});
  policies.push_back({"dollymp0", [] {
                        DollyMPConfig config;
                        config.clone_budget = 0;
                        return std::make_unique<DollyMPScheduler>(config);
                      }});
  policies.push_back({"dollymp2", [] {
                        DollyMPConfig config;
                        config.clone_budget = 2;
                        return std::make_unique<DollyMPScheduler>(config);
                      }});
  return policies;
}

struct RunOutput {
  std::vector<TraceRecord> stream;
  SimStats stats;
  double makespan = 0.0;
  double total_flowtime = 0.0;
  long long copies = 0;
};

RunOutput run_once(const Cluster& cluster, SimConfig config,
                   const std::vector<JobSpec>& jobs, const SchedulerFactory& factory,
                   int threads) {
  Recorder rec;
  config.recorder = &rec;
  config.threads = threads;
  auto sched = factory();
  const SimResult result = simulate(cluster, config, jobs, *sched);
  return {rec.snapshot(), result.stats, result.makespan_seconds,
          result.total_flowtime(), result.total_copies_launched};
}

/// Equality over every SimStats field that describes the simulated world.
/// Excluded by design: parallel_* including the arena counters (shard
/// geometry and scratch traffic differ across thread counts),
/// threads_configured/threads_resolved (the knob itself), and
/// wall_clock_seconds/peak_rss_bytes (host time/memory).  `include_batch`
/// turns off the batched-placement counters for comparisons that
/// deliberately vary SimConfig::batch_placement — the decisions must still
/// match, but hit/rebuild counts only exist on the batched side.
void expect_stats_equal(const SimStats& a, const SimStats& b, const std::string& label,
                        bool include_batch = true) {
#define DMP_EXPECT_FIELD(field) EXPECT_EQ(a.field, b.field) << label << ": " #field
  DMP_EXPECT_FIELD(scheduler_invocations);
  DMP_EXPECT_FIELD(slots_visited);
  DMP_EXPECT_FIELD(slots_fast_forwarded);
  DMP_EXPECT_FIELD(timer_wakeups_requested);
  DMP_EXPECT_FIELD(events_copy_finish);
  DMP_EXPECT_FIELD(events_work_finish);
  DMP_EXPECT_FIELD(events_server_failure);
  DMP_EXPECT_FIELD(events_server_repair);
  DMP_EXPECT_FIELD(events_timer);
  DMP_EXPECT_FIELD(events_job_arrival);
  DMP_EXPECT_FIELD(events_rack_failure);
  DMP_EXPECT_FIELD(events_rack_repair);
  DMP_EXPECT_FIELD(events_fail_slow_onset);
  DMP_EXPECT_FIELD(events_fail_slow_recover);
  DMP_EXPECT_FIELD(events_copy_fault);
  DMP_EXPECT_FIELD(placement_attempts);
  DMP_EXPECT_FIELD(placements_accepted);
  DMP_EXPECT_FIELD(rejected_job_not_ready);
  DMP_EXPECT_FIELD(rejected_phase_not_runnable);
  DMP_EXPECT_FIELD(rejected_copy_cap);
  DMP_EXPECT_FIELD(rejected_invalid_server);
  DMP_EXPECT_FIELD(rejected_no_capacity);
  DMP_EXPECT_FIELD(index_queries);
  DMP_EXPECT_FIELD(index_updates);
  if (include_batch) {
    // Thread-count-independent: the batch cache is keyed by demand and pool
    // generation, both products of the simulated world alone.  The scanned
    // counter is also gated here: batching walks cached group lists, so the
    // number of servers touched differs from the unbatched walk even though
    // the chosen servers are identical.
    DMP_EXPECT_FIELD(index_servers_scanned);
    DMP_EXPECT_FIELD(index_batch_hits);
    DMP_EXPECT_FIELD(index_batch_rebuilds);
  }
  DMP_EXPECT_FIELD(recorder_records);
  DMP_EXPECT_FIELD(recorder_bytes);
  DMP_EXPECT_FIELD(recorder_evictions);
  DMP_EXPECT_FIELD(recorder_hash);
  DMP_EXPECT_FIELD(copies_killed_by_faults);
  DMP_EXPECT_FIELD(work_seconds_lost);
  DMP_EXPECT_FIELD(retries_issued);
  DMP_EXPECT_FIELD(backoff_slots_waited);
  DMP_EXPECT_FIELD(servers_quarantined);
  DMP_EXPECT_FIELD(quarantine_exits);
  DMP_EXPECT_FIELD(clone_budget_degradations);
  DMP_EXPECT_FIELD(copies_finished);
  DMP_EXPECT_FIELD(copies_killed);
  DMP_EXPECT_FIELD(leaked_cpu);
  DMP_EXPECT_FIELD(leaked_mem);
  DMP_EXPECT_FIELD(leaked_active_copies);
  // Layout counters: the same decisions must drive the same slab traffic
  // and store footprint regardless of thread count.  peak_rss_bytes is
  // excluded like wall_clock_seconds (host-dependent, monotone per
  // process).
  DMP_EXPECT_FIELD(copy_slab_acquires);
  DMP_EXPECT_FIELD(copy_slab_reuses);
  DMP_EXPECT_FIELD(copy_slab_blocks);
  DMP_EXPECT_FIELD(runtime_store_bytes);
  DMP_EXPECT_FIELD(server_table_bytes);
  DMP_EXPECT_FIELD(bytes_per_server);
#undef DMP_EXPECT_FIELD
}

void run_matrix(const Cluster& cluster, const std::vector<JobSpec>& jobs,
                const char* inventory) {
  for (const auto& policy : all_policies()) {
    for (const bool faults : {false, true}) {
      SimConfig config;
      config.slot_seconds = 1.0;
      config.seed = 42;
      if (faults) {
        config.failures.enabled = true;
        config.failures.mean_time_to_failure_seconds = 400.0;
        config.failures.mean_repair_seconds = 60.0;
      }
      const RunOutput reference = run_once(cluster, config, jobs, policy.factory, 1);
      ASSERT_FALSE(reference.stream.empty()) << policy.name;
      EXPECT_EQ(reference.stats.parallel_sections, 0)
          << policy.name << ": sequential run must not dispatch shards";
      EXPECT_EQ(reference.stats.parallel_arena_acquires, 0)
          << policy.name << ": sequential run must not touch the parallel arenas";
      for (const int threads : {2, 4, 8}) {
        const std::string label = std::string(inventory) + "/" + policy.name +
                                  (faults ? "/faults" : "/healthy") + "/threads=" +
                                  std::to_string(threads);
        const RunOutput parallel = run_once(cluster, config, jobs, policy.factory, threads);
        const DivergenceReport report = compare_streams(reference.stream, parallel.stream);
        EXPECT_TRUE(report.identical) << label << "\n" << report.to_string();
        expect_stats_equal(reference.stats, parallel.stats, label);
        EXPECT_EQ(reference.makespan, parallel.makespan) << label;
        EXPECT_EQ(reference.total_flowtime, parallel.total_flowtime) << label;
        EXPECT_EQ(reference.copies, parallel.copies) << label;
      }
    }
  }
}

// threads in {1,2,4,8} x 9 policies x faults on/off on the paper's 30-node
// inventory.
TEST(ParallelEquivalence, Paper30EveryPolicyEveryThreadCount) {
  run_matrix(Cluster::paper30(), matrix_workload(9, 8), "paper30");
}

// Same matrix at trace scale: the 3K-server google-trace machine mix,
// where the placement index and its sharded weighted walk actually engage.
TEST(ParallelEquivalence, GoogleTrace3KEveryPolicyEveryThreadCount) {
  run_matrix(Cluster::google_trace(3000), matrix_workload(11, 6), "google3k");
}

// The weighted placement walk only departs from the collapsed group scan
// once per-server multipliers deviate from 1.0 — which requires DollyMP's
// straggler-aware scorer.  None of the matrix policies enables it, so pin
// the non-neutral sharded path with a dedicated differential.
TEST(ParallelEquivalence, StragglerAwareWeightedWalkMatchesSequential) {
  const Cluster cluster = Cluster::google_trace(3000);
  const auto jobs = matrix_workload(5, 8);
  const SchedulerFactory factory = [] {
    DollyMPConfig config;
    config.clone_budget = 2;
    config.straggler_aware = true;
    return std::make_unique<DollyMPScheduler>(config);
  };
  SimConfig config;
  config.slot_seconds = 1.0;
  config.seed = 21;
  const RunOutput reference = run_once(cluster, config, jobs, factory, 1);
  for (const int threads : {2, 4, 8}) {
    const RunOutput parallel = run_once(cluster, config, jobs, factory, threads);
    const DivergenceReport report = compare_streams(reference.stream, parallel.stream);
    EXPECT_TRUE(report.identical) << "threads=" << threads << "\n" << report.to_string();
    expect_stats_equal(reference.stats, parallel.stats,
                       "straggler/threads=" + std::to_string(threads));
    // The parallel run must actually have exercised the sharded walk —
    // otherwise this test proves nothing.
    EXPECT_GT(parallel.stats.parallel_sections, 0) << "threads=" << threads;
  }
}

// Unit-level differential for PlacementIndex::weighted_best_fit: identical
// winners with and without a pool attached, across varied multipliers and
// replica boosts.
TEST(ParallelEquivalence, WeightedBestFitUnitSerialVsSharded) {
  const Cluster cluster = Cluster::google_trace(500);
  PlacementIndex serial(cluster);
  PlacementIndex sharded(cluster);
  ThreadPool pool(4);
  ShardStats stats;
  sharded.set_parallelism(&pool, &stats);
  // Deterministic non-uniform multipliers so groups cannot collapse.
  for (ServerId id = 0; id < static_cast<ServerId>(cluster.size()); ++id) {
    const double w = 0.5 + 0.001 * static_cast<double>((id * 37) % 997);
    serial.set_multiplier(id, w);
    sharded.set_multiplier(id, w);
  }
  BlockPlacement block;
  block.replicas = {3, 250, 499};
  for (const Resources demand :
       {Resources{1.0, 1.0}, Resources{2.0, 4.0}, Resources{0.5, 8.0}, Resources{16.0, 1.0}}) {
    const BlockPlacement* const boosts[] = {nullptr, &block};
    for (const BlockPlacement* boost : boosts) {
      const ServerId a = serial.weighted_best_fit(demand, boost);
      const ServerId b = sharded.weighted_best_fit(demand, boost);
      EXPECT_EQ(a, b) << "demand=(" << demand.cpu() << "," << demand.mem() << ")"
                      << " boost=" << (boost != nullptr);
    }
  }
  EXPECT_GT(stats.sections, 0);
  EXPECT_EQ(serial.counters().servers_scanned, sharded.counters().servers_scanned);
}

// Tentpole differentials: the sharded event heap (SimConfig::event_shards)
// and batched placement (SimConfig::batch_placement) must be invisible in
// the record stream — for every policy, shard count, thread count and fault
// setting the run is bit-identical to the default-config reference.
void run_heap_batch_matrix(const Cluster& cluster, const std::vector<JobSpec>& jobs,
                           const char* inventory, const std::vector<PolicyEntry>& policies) {
  struct Variant {
    int event_shards;
    bool batch;
    int threads;
  };
  // Shard counts bracketing the default 8 (including the degenerate single
  // heap and the validation cap 64), crossed with thread counts 1..8, plus
  // the unbatched walk serial and heavily threaded.
  const Variant variants[] = {{1, true, 1},  {2, true, 2},  {4, true, 4},
                              {64, true, 8}, {8, false, 1}, {8, false, 8}};
  for (const auto& policy : policies) {
    for (const bool faults : {false, true}) {
      SimConfig config;
      config.slot_seconds = 1.0;
      config.seed = 42;
      if (faults) {
        config.failures.enabled = true;
        config.failures.mean_time_to_failure_seconds = 400.0;
        config.failures.mean_repair_seconds = 60.0;
      }
      // Reference: default event_shards/batch_placement, sequential.
      const RunOutput reference = run_once(cluster, config, jobs, policy.factory, 1);
      ASSERT_FALSE(reference.stream.empty()) << policy.name;
      for (const Variant& v : variants) {
        const std::string label = std::string(inventory) + "/" + policy.name +
                                  (faults ? "/faults" : "/healthy") + "/shards=" +
                                  std::to_string(v.event_shards) +
                                  (v.batch ? "/batch" : "/nobatch") + "/threads=" +
                                  std::to_string(v.threads);
        SimConfig vconfig = config;
        vconfig.event_shards = v.event_shards;
        vconfig.batch_placement = v.batch;
        const RunOutput variant = run_once(cluster, vconfig, jobs, policy.factory, v.threads);
        const DivergenceReport report = compare_streams(reference.stream, variant.stream);
        EXPECT_TRUE(report.identical) << label << "\n" << report.to_string();
        expect_stats_equal(reference.stats, variant.stats, label, v.batch);
        if (!v.batch) {
          EXPECT_EQ(variant.stats.index_batch_hits, 0) << label;
          EXPECT_EQ(variant.stats.index_batch_rebuilds, 0) << label;
        }
        EXPECT_EQ(reference.makespan, variant.makespan) << label;
        EXPECT_EQ(reference.total_flowtime, variant.total_flowtime) << label;
        EXPECT_EQ(reference.copies, variant.copies) << label;
      }
    }
  }
}

// event_shards {1,2,4,64} x batch on/off x threads {1,2,4,8} x 9 policies x
// faults on/off on the paper's 30-node inventory.
TEST(ParallelEquivalence, HeapShardsAndBatchingPaper30EveryPolicy) {
  run_heap_batch_matrix(Cluster::paper30(), matrix_workload(9, 8), "paper30",
                        all_policies());
}

// The same differential at trace scale, where the placement index (and so
// the batch cache) actually carries the load.  A policy subset keeps the
// runtime bounded; the full policy sweep runs on paper30 above.
TEST(ParallelEquivalence, HeapShardsAndBatchingGoogleTrace3K) {
  std::vector<PolicyEntry> subset;
  for (auto& policy : all_policies()) {
    if (std::string(policy.name) == "capacity" || std::string(policy.name) == "tetris" ||
        std::string(policy.name) == "dollymp2") {
      subset.push_back(policy);
    }
  }
  run_heap_batch_matrix(Cluster::google_trace(3000), matrix_workload(11, 6), "google3k",
                        subset);
}

// The priority oracle's scratch arena reaches steady state: after the first
// acquisition sized the buffers, later recomputes must run entirely inside
// retained capacity (zero allocations in the shard-merge glue).
TEST(ParallelEquivalence, PriorityScratchSteadyStateStopsGrowing) {
  ThreadPool pool(4);
  ShardStats stats;
  PriorityScratch scratch;
  std::vector<PriorityJobInput> inputs;
  for (int i = 0; i < 200; ++i) {
    PriorityJobInput in;
    in.volume = 1.0 + 0.25 * static_cast<double>(i % 17);
    in.length = 2.0 + static_cast<double>(i % 29);
    in.dominant = 0.01 * static_cast<double>(i % 50);
    inputs.push_back(in);
  }
  const PriorityResult first = compute_transient_priorities(inputs, &pool, &stats, &scratch);
  EXPECT_EQ(stats.arena_acquires, 1);
  const long long warmup_grows = stats.arena_grows;
  for (int pass = 0; pass < 10; ++pass) {
    const PriorityResult again = compute_transient_priorities(inputs, &pool, &stats, &scratch);
    EXPECT_EQ(again.priority, first.priority) << "arena must not change the answer";
  }
  EXPECT_EQ(stats.arena_acquires, 11);
  EXPECT_EQ(stats.arena_grows, warmup_grows) << "steady state must not allocate";
  EXPECT_EQ(stats.arena_reuses, stats.arena_acquires - stats.arena_grows);
  EXPECT_GE(stats.arena_reuses, 10);
}

// End-to-end: a threaded run drives the owner-held arenas (DollyMP's
// priority scratch, Capacity's speculation scratch) into reuse-dominated
// steady state, surfaced through SimStats.
TEST(ParallelEquivalence, SimulationArenasAreReuseDominated) {
  const Cluster cluster = Cluster::paper30();
  const auto jobs = matrix_workload(7, 24);
  SimConfig config;
  config.slot_seconds = 1.0;
  config.seed = 13;
  const SchedulerFactory factory = [] {
    DollyMPConfig dc;
    dc.clone_budget = 2;
    return std::make_unique<DollyMPScheduler>(dc);
  };
  const RunOutput out = run_once(cluster, config, jobs, factory, 4);
  EXPECT_GT(out.stats.parallel_arena_acquires, 0) << "threaded run must use the arenas";
  EXPECT_EQ(out.stats.parallel_arena_acquires,
            out.stats.parallel_arena_reuses + out.stats.parallel_arena_grows);
  EXPECT_GT(out.stats.parallel_arena_reuses, out.stats.parallel_arena_grows)
      << "steady state must be reuse-dominated";
}

// threads=0 resolves to hardware concurrency; whatever that is on the host,
// the simulation must stay bit-identical to the sequential run.
TEST(ParallelEquivalence, HardwareConcurrencyAutoThreadsMatchesSequential) {
  const Cluster cluster = Cluster::paper30();
  const auto jobs = matrix_workload(3, 8);
  const SchedulerFactory factory = [] {
    DollyMPConfig config;
    config.clone_budget = 2;
    return std::make_unique<DollyMPScheduler>(config);
  };
  SimConfig config;
  config.slot_seconds = 1.0;
  config.seed = 5;
  const RunOutput reference = run_once(cluster, config, jobs, factory, 1);
  const RunOutput auto_threads = run_once(cluster, config, jobs, factory, 0);
  const DivergenceReport report = compare_streams(reference.stream, auto_threads.stream);
  EXPECT_TRUE(report.identical) << report.to_string();
  expect_stats_equal(reference.stats, auto_threads.stats, "threads=0");
}

}  // namespace
}  // namespace dollymp
