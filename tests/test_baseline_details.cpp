// Detailed behavioural contracts of the baseline schedulers — the
// properties that make each baseline the thing the paper compares against.
#include <gtest/gtest.h>

#include "dollymp/sched/capacity.h"
#include "dollymp/sched/carbyne.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/hopper.h"
#include "dollymp/sched/simple_priority.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/sim/simulator.h"

namespace dollymp {
namespace {

SimConfig quiet(std::uint64_t seed = 1, double slot = 1.0) {
  SimConfig config;
  config.slot_seconds = slot;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  return config;
}

// ---- Capacity ---------------------------------------------------------------

TEST(CapacityDetails, HeadOfLineBlocking) {
  // Server (4,4).  Head job: 2 tasks of (3,3) -> only one fits at a time,
  // so the head always has an unmet request while running.  A (1,1) job
  // behind it COULD backfill, but the Capacity Scheduler's head-of-line
  // reservation must hold it back until the head finishes.
  const Cluster cluster = Cluster::single({4, 4});
  JobSpec head = JobSpec::single_phase(0, 2, {3, 3}, 10.0);
  JobSpec small = JobSpec::single_task(1, {1, 1}, 5.0);
  CapacityConfig cc;
  cc.speculation.enabled = false;
  CapacityScheduler capacity(cc);
  SimConfig config = quiet(1);
  config.record_tasks = true;
  const SimResult result = simulate(cluster, config, {head, small}, capacity);
  // Head runs 10 + 10 serially.  While its second request is unmet
  // (t in [0, 10)) the small job is held back even though it would fit;
  // once the head's last task is placed at t = 10 backfill opens up.
  EXPECT_DOUBLE_EQ(result.job(0).finish_seconds, 20.0);
  EXPECT_DOUBLE_EQ(result.job(1).first_start_seconds, 10.0);
}

TEST(CapacityDetails, NoBlockingWhenHeadIsSatisfied) {
  // Same setup but the head's two tasks fit together: the small job
  // backfills immediately.
  const Cluster cluster = Cluster::single({8, 8});
  JobSpec head = JobSpec::single_phase(0, 2, {3, 3}, 10.0);
  JobSpec small = JobSpec::single_task(1, {1, 1}, 5.0);
  CapacityConfig cc;
  cc.speculation.enabled = false;
  CapacityScheduler capacity(cc);
  const SimResult result = simulate(cluster, quiet(2), {head, small}, capacity);
  EXPECT_DOUBLE_EQ(result.job(1).first_start_seconds, 0.0);
}

TEST(CapacityDetails, FirstFitIgnoresPacking) {
  // Two servers: A (4,16) then B (4,4).  A memory-light task "fits best"
  // on B, but Capacity's first-fit puts it on A — verified indirectly: a
  // following memory-heavy task (4,16) then cannot be placed anywhere and
  // must wait, whereas a best-fit packer would have kept A open.
  Cluster cluster;
  cluster.add_server(ServerSpec{{4, 16}, 1.0, 0, "big-mem"});
  cluster.add_server(ServerSpec{{4, 4}, 1.0, 0, "small-mem"});
  const std::vector<JobSpec> jobs{
      JobSpec::single_task(0, {4, 4}, 10.0),    // cpu-wide, memory-light
      JobSpec::single_task(1, {4, 16}, 10.0),   // needs the big-mem server
  };
  CapacityConfig cc;
  cc.speculation.enabled = false;
  CapacityScheduler capacity(cc);
  const SimResult capacity_result = simulate(cluster, quiet(3), jobs, capacity);
  EXPECT_GE(capacity_result.job(1).first_start_seconds, 10.0)
      << "first-fit strands the big-mem server under the light task";

  TetrisScheduler tetris;
  const SimResult tetris_result = simulate(cluster, quiet(3), jobs, tetris);
  EXPECT_DOUBLE_EQ(tetris_result.job(1).first_start_seconds, 0.0)
      << "alignment packing keeps the big-mem server for the big-mem task";
}

// ---- Tetris -----------------------------------------------------------------

TEST(TetrisDetails, DeltaKnobTradesPackingForShortness) {
  // One unit server; a full-server long job and two small short jobs.
  // delta = 0 (pure packing): big job first.  Large delta (SRPT-heavy):
  // small jobs first.
  const Cluster cluster = Cluster::single({1, 1});
  const std::vector<JobSpec> jobs{
      JobSpec::single_task(0, {1.0, 1.0}, 20.0),
      JobSpec::single_task(1, {0.25, 0.25}, 4.0),
      JobSpec::single_task(2, {0.25, 0.25}, 4.0),
  };
  SimConfig config = quiet(5);
  config.record_tasks = true;

  TetrisScheduler pure_packing(TetrisConfig{0.0});
  const SimResult packing = simulate(cluster, config, jobs, pure_packing);
  EXPECT_DOUBLE_EQ(packing.job(0).first_start_seconds, 0.0);

  TetrisScheduler srpt_heavy(TetrisConfig{10.0});
  const SimResult srpt = simulate(cluster, config, jobs, srpt_heavy);
  EXPECT_DOUBLE_EQ(srpt.job(1).first_start_seconds, 0.0);
  EXPECT_GT(srpt.job(0).first_start_seconds, 0.0);
}

TEST(TetrisDetails, NeverClones) {
  const Cluster cluster = Cluster::uniform(6, {8, 16});
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 4, {1, 2}, 20.0, 15.0));
  }
  TetrisScheduler tetris;
  const SimResult result = simulate(cluster, quiet(7), jobs, tetris);
  for (const auto& j : result.jobs) {
    EXPECT_EQ(j.clones_launched, 0);
    EXPECT_EQ(j.speculative_launched, 0);
  }
}

// ---- DRF --------------------------------------------------------------------

TEST(DrfDetails, SharesBetweenManyJobs) {
  // Six identical jobs, batch arrival, each wanting more than 1/6 of the
  // cluster: DRF must start tasks from every job in the first wave rather
  // than serving any one job fully.
  const Cluster cluster = Cluster::uniform(3, {4, 8});  // 12 cores total
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 6, {1, 2}, 20.0));
  }
  SimConfig config = quiet(9);
  config.record_tasks = true;
  DrfScheduler drf;
  const SimResult result = simulate(cluster, config, jobs, drf);
  int jobs_started_at_zero = 0;
  std::vector<bool> started(6, false);
  for (const auto& t : result.tasks) {
    if (t.first_start_seconds == 0.0) started[static_cast<std::size_t>(t.ref.job)] = true;
  }
  for (const bool s : started) jobs_started_at_zero += s ? 1 : 0;
  EXPECT_EQ(jobs_started_at_zero, 6) << "DRF starts every job in the first wave";
}

// ---- Carbyne ----------------------------------------------------------------

TEST(CarbyneDetails, FairShareCapInFirstPass) {
  // Two jobs, one huge and one small, batch arrival on a 12-core cluster.
  // Carbyne's pass 1 caps both at half the cluster; pass 2 gives the
  // leftover to the smaller job first.  Net effect: the small job is not
  // starved by the big one (its first tasks start at t = 0).
  const Cluster cluster = Cluster::uniform(3, {4, 8});
  const std::vector<JobSpec> jobs{
      JobSpec::single_phase(0, 24, {1, 2}, 30.0),  // huge
      JobSpec::single_phase(1, 2, {1, 2}, 10.0),   // small
  };
  SimConfig config = quiet(11);
  config.record_tasks = true;
  CarbyneScheduler carbyne;
  const SimResult result = simulate(cluster, config, jobs, carbyne);
  EXPECT_DOUBLE_EQ(result.job(1).first_start_seconds, 0.0);
}

// ---- SRPT / SVF -------------------------------------------------------------

TEST(SimplePriorityDetails, CloneBudgetVariantClones) {
  const Cluster cluster = Cluster::uniform(6, {8, 16});
  const std::vector<JobSpec> jobs{JobSpec::single_phase(0, 4, {1, 2}, 30.0, 25.0)};
  SimplePriorityScheduler svf1({SimplePriorityRule::kSvf, 1.5, 1});
  const SimResult result = simulate(cluster, quiet(13), jobs, svf1);
  EXPECT_GT(result.jobs[0].clones_launched, 0);
  for (const auto& j : result.jobs) {
    EXPECT_LE(j.clones_launched, j.total_tasks);  // <= 1 clone per task
  }
}

TEST(SimplePriorityDetails, SrptUpdatesAsPhasesComplete) {
  // Job 0: two phases of 10 s each (remaining length 20 at arrival).
  // Job 1: one phase of 15 s.  SRPT starts job 1's task... after job 0's
  // map phase completes, job 0's remaining length (10) < job 1's (15 if
  // not started), so preference order flips dynamically.  The robust
  // check: both jobs complete and the total flowtime is no worse than
  // FIFO's on the same instance.
  const Cluster cluster = Cluster::single({1, 1});
  JobSpec two_phase;
  two_phase.id = 0;
  two_phase.phases.push_back({"a", 1, {1, 1}, 10.0, 0.0, {}});
  two_phase.phases.push_back({"b", 1, {1, 1}, 10.0, 0.0, {0}});
  const std::vector<JobSpec> jobs{two_phase, JobSpec::single_task(1, {1, 1}, 15.0)};
  SimplePriorityScheduler srpt({SimplePriorityRule::kSrpt, 1.5, 0});
  CapacityConfig cc;
  cc.speculation.enabled = false;
  CapacityScheduler fifo(cc);
  const SimResult srpt_result = simulate(cluster, quiet(15), jobs, srpt);
  const SimResult fifo_result = simulate(cluster, quiet(15), jobs, fifo);
  EXPECT_LE(srpt_result.total_flowtime(), fifo_result.total_flowtime() + 1e-9);
}

// ---- Hopper -----------------------------------------------------------------

TEST(HopperDetails, ZeroBudgetDegeneratesToWorkConserving) {
  HopperConfig hc;
  hc.speculation_budget = 0.0;
  hc.speculation.enabled = false;
  HopperScheduler hopper(hc);
  const Cluster cluster = Cluster::uniform(4, {8, 16});
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 8, {2, 4}, 30.0, 0.0, i * 5.0));
  }
  SimplePriorityScheduler svf({SimplePriorityRule::kSvf, 1.5, 0});
  const SimResult hopper_result = simulate(cluster, quiet(17), jobs, hopper);
  const SimResult svf_result = simulate(cluster, quiet(17), jobs, svf);
  // With zero reservation Hopper is a virtual-size (~volume) scheduler;
  // flowtimes land in the same ballpark as SVF on a deterministic load.
  EXPECT_NEAR(hopper_result.total_flowtime() / svf_result.total_flowtime(), 1.0, 0.2);
}

}  // namespace
}  // namespace dollymp
