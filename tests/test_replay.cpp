// Replay-divergence verifier tests.
//
// The determinism matrix is the subsystem's reason to exist: every
// scheduler policy, with and without failure injection and with and
// without the placement index, must replay bit-identically from the same
// seed.  The injection tests then prove the verifier's diagnostic value:
// a deliberately reordered / mutated / truncated stream is pinpointed at
// the exact first divergent record, decoded on both sides.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dollymp/obs/replay.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/carbyne.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/hopper.h"
#include "dollymp/sched/simple_priority.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/workload/arrivals.h"

namespace dollymp {
namespace {

std::vector<JobSpec> matrix_workload(unsigned seed) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 8, {1, 1}, 20.0, 30.0));
  }
  assign_poisson_arrivals(jobs, 15.0, seed + 100);
  return jobs;
}

struct PolicyEntry {
  const char* name;
  SchedulerFactory factory;
};

std::vector<PolicyEntry> all_policies() {
  std::vector<PolicyEntry> policies;
  policies.push_back({"capacity", [] { return std::make_unique<CapacityScheduler>(); }});
  policies.push_back({"drf", [] { return std::make_unique<DrfScheduler>(); }});
  policies.push_back({"tetris", [] { return std::make_unique<TetrisScheduler>(); }});
  policies.push_back({"carbyne", [] { return std::make_unique<CarbyneScheduler>(); }});
  policies.push_back({"srpt", [] {
                        SimplePriorityConfig config;
                        config.rule = SimplePriorityRule::kSrpt;
                        return std::make_unique<SimplePriorityScheduler>(config);
                      }});
  policies.push_back({"svf", [] {
                        SimplePriorityConfig config;
                        config.rule = SimplePriorityRule::kSvf;
                        return std::make_unique<SimplePriorityScheduler>(config);
                      }});
  policies.push_back({"hopper", [] { return std::make_unique<HopperScheduler>(); }});
  policies.push_back({"dollymp0", [] {
                        DollyMPConfig config;
                        config.clone_budget = 0;
                        return std::make_unique<DollyMPScheduler>(config);
                      }});
  policies.push_back({"dollymp2", [] {
                        DollyMPConfig config;
                        config.clone_budget = 2;
                        return std::make_unique<DollyMPScheduler>(config);
                      }});
  return policies;
}

// The tentpole guarantee: same seed, same stream — for every policy, with
// and without failure injection, with and without the placement index.
TEST(Replay, DeterminismMatrixEveryPolicyFailuresIndex) {
  const Cluster cluster = Cluster::paper30();
  const auto jobs = matrix_workload(9);
  for (const auto& policy : all_policies()) {
    for (const bool failures : {false, true}) {
      for (const bool index : {false, true}) {
        SimConfig config;
        config.slot_seconds = 1.0;
        config.seed = 42;
        config.use_placement_index = index;
        config.failures.enabled = failures;
        config.failures.mean_time_to_failure_seconds = 400.0;
        config.failures.mean_repair_seconds = 60.0;
        const DivergenceReport report =
            verify_replay(cluster, config, jobs, policy.factory);
        EXPECT_TRUE(report.identical)
            << policy.name << " failures=" << failures << " index=" << index
            << "\n" << report.to_string();
        EXPECT_GT(report.records_a, 0u) << policy.name;
        EXPECT_EQ(report.hash_a, report.hash_b) << policy.name;
      }
    }
  }
}

// Linear scan and placement index must not just be internally deterministic
// but produce the *same* stream as each other (bit-identical decisions).
TEST(Replay, PlacementIndexStreamMatchesLinearScan) {
  const Cluster cluster = Cluster::paper30();
  const auto jobs = matrix_workload(4);
  SimConfig config;
  config.slot_seconds = 1.0;
  config.seed = 7;

  const SchedulerFactory factory = [] { return std::make_unique<DollyMPScheduler>(); };
  config.use_placement_index = false;
  Recorder linear;
  {
    SimConfig run = config;
    run.recorder = &linear;
    auto sched = factory();
    (void)simulate(cluster, run, jobs, *sched);
  }
  config.use_placement_index = true;
  Recorder indexed;
  {
    SimConfig run = config;
    run.recorder = &indexed;
    auto sched = factory();
    (void)simulate(cluster, run, jobs, *sched);
  }
  const DivergenceReport report =
      compare_streams(linear.snapshot(), indexed.snapshot());
  EXPECT_TRUE(report.identical) << report.to_string();
}

std::vector<TraceRecord> reference_stream() {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 12; ++i) {
    TraceRecord r;
    r.seq = static_cast<std::uint64_t>(i);
    r.slot = i / 3;
    r.type = static_cast<TraceEv>(i % 5);
    r.job = i % 4;
    r.task = i;
    records.push_back(r);
  }
  return records;
}

TEST(Replay, InjectedReorderingPinpointedAtExactRecord) {
  const auto a = reference_stream();
  auto b = a;
  std::swap(b[5], b[6]);  // adjacent transposition deep in the stream
  const DivergenceReport report = compare_streams(a, b);
  ASSERT_FALSE(report.identical);
  EXPECT_NE(report.hash_a, report.hash_b);
  EXPECT_EQ(report.first_divergence, 5u);  // earlier records certified equal
  EXPECT_EQ(report.lhs, decode(a[5]));
  EXPECT_EQ(report.rhs, decode(a[6]));  // b[5] is a's sixth record
  const std::string text = report.to_string();
  EXPECT_NE(text.find("DIVERGED"), std::string::npos);
  EXPECT_NE(text.find("index 5"), std::string::npos);
  EXPECT_NE(text.find("A: "), std::string::npos);
  EXPECT_NE(text.find("B: "), std::string::npos);
}

TEST(Replay, SingleFieldMutationPinpointed) {
  const auto a = reference_stream();
  auto b = a;
  b[8].server = 17;  // one flipped placement decision
  const DivergenceReport report = compare_streams(a, b);
  ASSERT_FALSE(report.identical);
  EXPECT_EQ(report.first_divergence, 8u);
  EXPECT_NE(report.lhs, report.rhs);
}

TEST(Replay, TruncatedStreamReportsEndOfStream) {
  const auto a = reference_stream();
  auto b = a;
  b.resize(9);  // strict prefix
  const DivergenceReport report = compare_streams(a, b);
  ASSERT_FALSE(report.identical);
  EXPECT_EQ(report.first_divergence, 9u);
  EXPECT_EQ(report.records_a, 12u);
  EXPECT_EQ(report.records_b, 9u);
  EXPECT_EQ(report.lhs, decode(a[9]));
  EXPECT_EQ(report.rhs, "<end of stream>");
}

TEST(Replay, IdenticalStreamsReportIdentical) {
  const auto a = reference_stream();
  const DivergenceReport report = compare_streams(a, a);
  EXPECT_TRUE(report.identical);
  EXPECT_EQ(report.hash_a, report.hash_b);
  EXPECT_EQ(report.records_a, 12u);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("identical"), std::string::npos);
  EXPECT_NE(text.find("12 records"), std::string::npos);
}

TEST(Replay, VerifyAgainstCapturedLogMatchesLiveRun) {
  const Cluster cluster = Cluster::paper30();
  const auto jobs = matrix_workload(2);
  SimConfig config;
  config.slot_seconds = 1.0;
  config.seed = 13;
  const SchedulerFactory factory = [] { return std::make_unique<DollyMPScheduler>(); };

  // Capture a reference stream, then verify a fresh run against it.
  Recorder reference;
  {
    SimConfig run = config;
    run.recorder = &reference;
    auto sched = factory();
    (void)simulate(cluster, run, jobs, *sched);
  }
  const DivergenceReport same =
      verify_against_log(cluster, config, jobs, factory, reference.snapshot());
  EXPECT_TRUE(same.identical) << same.to_string();

  // A different seed must diverge, and early: the event streams part ways
  // as soon as arrivals or scheduling differ.
  SimConfig other = config;
  other.seed = 14;
  const DivergenceReport diff =
      verify_against_log(cluster, other, jobs, factory, reference.snapshot());
  EXPECT_FALSE(diff.identical);
  EXPECT_FALSE(diff.lhs.empty());
  EXPECT_FALSE(diff.rhs.empty());
}

}  // namespace
}  // namespace dollymp
