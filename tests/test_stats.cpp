#include "dollymp/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dollymp {
namespace {

TEST(RunningStats, Empty) {
  const RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.4);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(Cdf, FractionAtMost) {
  const Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(100.0), 1.0);
}

TEST(Cdf, Quantile) {
  const Cdf cdf({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.21), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 30.0);
}

TEST(Cdf, QuantileOnEmptyThrows) {
  const Cdf cdf;
  EXPECT_THROW(cdf.quantile(0.5), std::logic_error);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(1.0), 0.0);
}

TEST(Cdf, IncrementalAdd) {
  Cdf cdf;
  cdf.add(3.0);
  cdf.add(1.0);
  cdf.add(2.0);
  EXPECT_EQ(cdf.count(), 3u);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
  // Adding after sorting re-sorts correctly.
  cdf.add(0.5);
  EXPECT_DOUBLE_EQ(cdf.min(), 0.5);
}

TEST(Cdf, CurveIsMonotone) {
  Cdf cdf;
  for (int i = 100; i >= 1; --i) cdf.add(static_cast<double>(i));
  const auto curve = cdf.curve(10);
  ASSERT_EQ(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GT(curve[i].first, curve[i - 1].first);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 100.0);
}

TEST(Cdf, SortedSamples) {
  const Cdf cdf({3.0, 1.0, 2.0});
  const auto& sorted = cdf.sorted_samples();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // clamps into bucket 0
  h.add(0.5);
  h.add(9.9);
  h.add(15.0);  // clamps into last bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(1), 4.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("1"), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(QuantileOf, Convenience) {
  EXPECT_DOUBLE_EQ(quantile_of({5.0, 1.0, 3.0}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_of({5.0}, 0.99), 5.0);
}

}  // namespace
}  // namespace dollymp
