// Randomized differential fuzz for the deterministic parallel core.
//
// Each trial draws a random — but validate()-clean — SimConfig with fault
// and resilience (quarantine) churn enabled at random rates, a random
// workload, and a random thread count, then runs the scenario twice: once
// sequential (threads = 1) and once parallel.  The parallel run must
// satisfy the five chaos invariants (completion, no leaked allocations,
// copy conservation, bounded degradation, replay determinism via the
// stream comparison) AND produce a flight-recorder stream bit-identical to
// the sequential run's.  On divergence the failure message decodes the
// first differing record on both sides (DivergenceReport::to_string).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/rng.h"
#include "dollymp/obs/replay.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

namespace dollymp {
namespace {

struct FuzzScenario {
  SimConfig config;
  DollyMPConfig policy;
  int threads = 2;
  int jobs = 8;
  double arrival_gap = 12.0;
  std::uint64_t workload_seed = 0;
};

FuzzScenario draw_scenario(Rng& rng) {
  FuzzScenario s;
  s.config.slot_seconds = rng.chance(0.5) ? 5.0 : 2.0;
  s.config.seed = rng.below(1u << 20) + 1;
  s.config.background.enabled = false;
  s.config.locality.enabled = rng.chance(0.3);
  s.config.max_copies_per_task = static_cast<int>(rng.range(2, 4));
  s.config.sigma_factor = rng.uniform(1.1, 2.0);

  // Fault churn: each class independently, at rates hot enough to fire
  // within the short horizon.
  if (rng.chance(0.6)) {
    s.config.failures.enabled = true;
    s.config.failures.mean_time_to_failure_seconds = rng.uniform(300.0, 900.0);
    s.config.failures.mean_repair_seconds = rng.uniform(50.0, 200.0);
  }
  if (rng.chance(0.4)) {
    s.config.faults.rack.enabled = true;
    s.config.faults.rack.time_to_failure.mean_seconds = rng.uniform(800.0, 2000.0);
    s.config.faults.rack.repair.mean_seconds = rng.uniform(100.0, 300.0);
  }
  if (rng.chance(0.4)) {
    s.config.faults.fail_slow.enabled = true;
    s.config.faults.fail_slow.slowdown_factor = rng.uniform(2.0, 4.0);
    s.config.faults.fail_slow.time_to_onset.mean_seconds = rng.uniform(300.0, 900.0);
    s.config.faults.fail_slow.recovery.mean_seconds = rng.uniform(100.0, 400.0);
  }
  if (rng.chance(0.5)) {
    s.config.faults.copy.enabled = true;
    s.config.faults.copy.inter_fault.mean_seconds = rng.uniform(60.0, 240.0);
  }

  // Policy: DollyMP with a random clone budget; resilience (retry backoff +
  // quarantine strikes) flips on for most trials so quarantine churn runs
  // concurrently with the sharded scans.
  s.policy.clone_budget = static_cast<int>(rng.range(0, 2));
  s.policy.straggler_aware = rng.chance(0.5);
  if (rng.chance(0.7)) {
    s.policy.resilience.enabled = true;
    s.policy.resilience.flap_threshold = rng.uniform(1.5, 3.0);
  }

  s.threads = static_cast<int>(rng.range(2, 8));
  s.jobs = static_cast<int>(rng.range(6, 12));
  s.arrival_gap = rng.uniform(8.0, 20.0);
  s.workload_seed = rng.below(1u << 20);
  return s;
}

std::vector<JobSpec> fuzz_workload(const FuzzScenario& s) {
  TraceModelConfig model_config;
  model_config.max_tasks_per_phase = 16;
  TraceModel model(model_config, s.workload_seed);
  auto jobs = model.sample_jobs(s.jobs);
  assign_poisson_arrivals(jobs, s.arrival_gap, s.workload_seed + 1);
  return jobs;
}

std::string describe(const FuzzScenario& s, int trial) {
  std::string out = "trial " + std::to_string(trial) + ": seed=" +
                    std::to_string(s.config.seed) + " threads=" +
                    std::to_string(s.threads) + " jobs=" + std::to_string(s.jobs) +
                    " clones=" + std::to_string(s.policy.clone_budget);
  if (s.policy.straggler_aware) out += " straggler";
  if (s.policy.resilience.enabled) out += " resilience";
  if (s.config.failures.enabled) out += " crash";
  if (s.config.faults.rack.enabled) out += " rack";
  if (s.config.faults.fail_slow.enabled) out += " failslow";
  if (s.config.faults.copy.enabled) out += " copyfault";
  return out;
}

void run_trial(const FuzzScenario& s, int trial) {
  const std::string label = describe(s, trial);
  SCOPED_TRACE(label);
  ASSERT_NO_THROW(s.config.validate());
  const Cluster cluster = Cluster::paper30();
  const auto jobs = fuzz_workload(s);
  const auto run = [&](int threads, Recorder& rec) {
    SimConfig config = s.config;
    config.threads = threads;
    config.recorder = &rec;
    DollyMPScheduler scheduler(s.policy);
    return simulate(cluster, config, jobs, scheduler);
  };

  Recorder sequential_rec;
  const SimResult sequential = run(1, sequential_rec);
  Recorder parallel_rec;
  const SimResult parallel = run(s.threads, parallel_rec);

  // Differential: the parallel stream must be bit-identical, record for
  // record, to the sequential one; to_string() decodes the first divergent
  // record on both sides.
  const DivergenceReport diff =
      compare_streams(sequential_rec.snapshot(), parallel_rec.snapshot());
  ASSERT_TRUE(diff.identical) << diff.to_string();
  EXPECT_EQ(sequential.stats.recorder_hash, parallel.stats.recorder_hash);

  // Chaos invariant 1: every job completes.
  ASSERT_EQ(parallel.jobs.size(), jobs.size());
  for (const auto& j : parallel.jobs) {
    EXPECT_GE(j.finish_seconds, j.arrival_seconds) << "job " << j.id;
  }
  // Invariant 2: no leaked allocations after the last job.
  EXPECT_EQ(parallel.stats.leaked_cpu, 0.0);
  EXPECT_EQ(parallel.stats.leaked_mem, 0.0);
  EXPECT_EQ(parallel.stats.leaked_active_copies, 0);
  // Invariant 3: copy conservation — every launch finishes or is killed.
  EXPECT_EQ(parallel.total_copies_launched,
            parallel.stats.copies_finished + parallel.stats.copies_killed);
  // Invariant 4: bounded degradation versus the healthy sequential twin
  // (catches livelock/runaway, not performance).
  SimConfig healthy = s.config;
  healthy.failures.enabled = false;
  healthy.faults = FaultConfig{};
  DollyMPScheduler healthy_scheduler(s.policy);
  const SimResult baseline = simulate(cluster, healthy, jobs, healthy_scheduler);
  EXPECT_LE(parallel.makespan_seconds, baseline.makespan_seconds * 50.0 + 1800.0);
  // Invariant 5: replay determinism of the parallel config itself — a
  // second parallel run reproduces the same stream.
  SimConfig replay_config = s.config;
  replay_config.threads = s.threads;
  const DivergenceReport replay =
      verify_replay(cluster, replay_config, jobs,
                    [&s] { return std::make_unique<DollyMPScheduler>(s.policy); });
  EXPECT_TRUE(replay.identical) << replay.to_string();
}

TEST(ParallelFuzz, RandomConfigsSequentialVsParallel) {
  Rng rng(0xD011FA55F0225EEDULL);
  for (int trial = 0; trial < 12; ++trial) {
    FuzzScenario s = draw_scenario(rng);
    run_trial(s, trial);
  }
}

}  // namespace
}  // namespace dollymp
