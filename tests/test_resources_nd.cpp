// Differential harness for the N-dimensional Resources generalization.
//
// The historical type carried exactly two fields (cpu cores, memory GB);
// the N-D rewrite must reproduce that arithmetic bit for bit when only
// dimensions 0 and 1 are populated — that is the load-bearing premise
// behind keeping every one of the 36 layout-golden stream hashes valid.
// LegacyResources below is a faithful transcription of the old two-field
// implementation (same expressions, same evaluation order); the fuzz suite
// drives both implementations through every operation with shared random
// inputs and compares results BITWISE (memcpy to uint64_t, so -0.0 vs 0.0
// or any ULP drift fails, not just epsilon differences).
//
// The property suite then exercises the genuinely new territory — vectors
// with 3 and 4 populated dimensions — where no legacy oracle exists:
// fits_within monotonicity, dot symmetry/linearity, clamp idempotence,
// dominant-share bounds.
//
// Finally, the equality-policy suite pins the operator== contract the
// header documents: exact comparison (near-equal vectors are distinct),
// which PlacementIndex depends on for its used-vector group keys, while
// fits_within stays slack-tolerant.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/cluster/placement_index.h"
#include "dollymp/common/resources.h"

namespace dollymp {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t out;
  static_assert(sizeof(out) == sizeof(v));
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

#define EXPECT_BITEQ(a, b) EXPECT_EQ(bits(a), bits(b)) << (a) << " vs " << (b)

// ---------------------------------------------------------------------------
// The pre-refactor two-field implementation, transcribed verbatim: same
// expressions, same slack constant, same zero-capacity guards and the same
// evaluation order (cpu first, then mem) as the old resources.{h,cpp}.
// ---------------------------------------------------------------------------

struct LegacyResources {
  double cpu = 0.0;
  double mem = 0.0;

  [[nodiscard]] bool fits_within(const LegacyResources& capacity) const {
    constexpr double kSlack = 1e-9;
    return cpu <= capacity.cpu + kSlack && mem <= capacity.mem + kSlack;
  }
  [[nodiscard]] bool is_zero() const { return cpu == 0.0 && mem == 0.0; }
  [[nodiscard]] bool non_negative() const { return cpu >= 0.0 && mem >= 0.0; }
  [[nodiscard]] double dot(const LegacyResources& o) const {
    return cpu * o.cpu + mem * o.mem;
  }
  [[nodiscard]] double dominant_share(const LegacyResources& total) const {
    double share = 0.0;
    if (total.cpu > 0.0) share = std::max(share, cpu / total.cpu);
    if (total.mem > 0.0) share = std::max(share, mem / total.mem);
    return share;
  }
  [[nodiscard]] LegacyResources min(const LegacyResources& o) const {
    return {cpu < o.cpu ? cpu : o.cpu, mem < o.mem ? mem : o.mem};
  }
  [[nodiscard]] LegacyResources max(const LegacyResources& o) const {
    return {cpu > o.cpu ? cpu : o.cpu, mem > o.mem ? mem : o.mem};
  }
  [[nodiscard]] LegacyResources clamped() const {
    return {cpu < 0.0 ? 0.0 : cpu, mem < 0.0 ? 0.0 : mem};
  }
  LegacyResources& operator+=(const LegacyResources& o) {
    cpu += o.cpu;
    mem += o.mem;
    return *this;
  }
  LegacyResources& operator-=(const LegacyResources& o) {
    cpu -= o.cpu;
    mem -= o.mem;
    return *this;
  }
  LegacyResources& operator*=(double s) {
    cpu *= s;
    mem *= s;
    return *this;
  }
  friend bool operator==(const LegacyResources& a, const LegacyResources& b) {
    return a.cpu == b.cpu && a.mem == b.mem;
  }
};

double legacy_normalized_sum(const LegacyResources& r, const LegacyResources& total) {
  double sum = 0.0;
  if (total.cpu > 0.0) sum += r.cpu / total.cpu;
  if (total.mem > 0.0) sum += r.mem / total.mem;
  return sum;
}

double legacy_min_free_fraction(const LegacyResources& free, const LegacyResources& total) {
  double fraction = 0.0;
  bool any = false;
  if (total.cpu > 0.0) {
    fraction = free.cpu / total.cpu;
    any = true;
  }
  if (total.mem > 0.0) {
    const double f = free.mem / total.mem;
    fraction = any ? std::min(fraction, f) : f;
    any = true;
  }
  return any ? fraction : 0.0;
}

// ---------------------------------------------------------------------------
// Shared fuzz input generation.  The value palette deliberately mixes the
// trace model's grid (integral cores, quarter-GB steps — the values the
// simulator actually circulates) with raw uniform doubles and exact zeros.
// The domain is non-negative on purpose: that is the type's documented
// convention, and the bit-identity argument (x + 0.0 preserves x's bits,
// products against 0.0 give +0.0) genuinely requires it — a negative
// component times 0.0 yields -0.0 and legacy's two-term dot can return
// -0.0 where the accumulate-from-+0.0 loop returns +0.0.  Negative
// components still occur in the simulator, but only transiently from
// subtraction (release under float noise), which is how the clamp
// differential below produces them.
// ---------------------------------------------------------------------------

class ValueGen {
 public:
  explicit ValueGen(std::uint64_t seed) : rng_(seed) {}

  double value() {
    switch (pick_(rng_)) {
      case 0: return 0.0;
      case 1: return static_cast<double>(small_(rng_));               // integers
      case 2: return static_cast<double>(small_(rng_)) * 0.25;        // grid steps
      case 3: return uniform_(rng_) * 256.0;                          // raw doubles
      default: return static_cast<double>(small_(rng_)) * 0.125;      // fine grid
    }
  }
  /// Strictly positive (for capacities/totals).
  double positive() { return static_cast<double>(small_(rng_)) * 0.5 + 0.5; }
  double scalar() { return uniform_(rng_) * 4.0; }

  std::pair<Resources, LegacyResources> paired() {
    const double c = value();
    const double m = value();
    return {Resources{c, m}, LegacyResources{c, m}};
  }

 private:
  std::mt19937_64 rng_;
  std::uniform_int_distribution<int> pick_{0, 4};
  std::uniform_int_distribution<int> small_{0, 64};
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

void expect_biteq(const Resources& nd, const LegacyResources& legacy) {
  EXPECT_BITEQ(nd.cpu(), legacy.cpu);
  EXPECT_BITEQ(nd.mem(), legacy.mem);
  // The bit-identity contract's other half: unused dimensions stay exactly
  // +0.0 through every operation, or downstream sums/compares would shift.
  EXPECT_EQ(bits(nd[2]), bits(0.0));
  EXPECT_EQ(bits(nd[3]), bits(0.0));
}

// ---------------------------------------------------------------------------
// N=2 differential fuzz: every operation, bitwise.
// ---------------------------------------------------------------------------

TEST(ResourcesNdDifferential, ArithmeticMatchesLegacyBitwise) {
  ValueGen gen(20260809);
  for (int round = 0; round < 4000; ++round) {
    auto [a, la] = gen.paired();
    auto [b, lb] = gen.paired();
    const double s = gen.scalar();

    expect_biteq(a + b, LegacyResources{la} += lb);
    expect_biteq(a - b, LegacyResources{la} -= lb);
    expect_biteq(a * s, LegacyResources{la} *= s);
    expect_biteq(s * a, LegacyResources{la} *= s);
    expect_biteq(a.min(b), la.min(lb));
    expect_biteq(a.max(b), la.max(lb));
    // Negative components enter the real system only through subtraction
    // (release under float noise); clamp them back the way server code does.
    const Resources diff = a - b;
    const LegacyResources ldiff{la.cpu - lb.cpu, la.mem - lb.mem};
    expect_biteq(diff.clamped(), ldiff.clamped());

    Resources acc = a;
    LegacyResources lacc = la;
    acc += b;
    acc -= b;
    lacc += lb;
    lacc -= lb;
    expect_biteq(acc, lacc);  // the alloc/release round trip
  }
}

TEST(ResourcesNdDifferential, PredicatesAndScoresMatchLegacy) {
  ValueGen gen(77);
  for (int round = 0; round < 4000; ++round) {
    auto [a, la] = gen.paired();
    auto [b, lb] = gen.paired();

    EXPECT_EQ(a.fits_within(b), la.fits_within(lb));
    EXPECT_EQ(a.is_zero(), la.is_zero());
    EXPECT_EQ(a.non_negative(), la.non_negative());
    EXPECT_EQ(a == b, la == lb);
    EXPECT_BITEQ(a.dot(b), la.dot(lb));
    EXPECT_BITEQ(a.dominant_share(b), la.dominant_share(lb));
    EXPECT_BITEQ(normalized_sum(a, b), legacy_normalized_sum(la, lb));
    EXPECT_BITEQ(min_free_fraction(a, b), legacy_min_free_fraction(la, lb));
  }
}

TEST(ResourcesNdDifferential, ExactFillRoundTripNeverRejects) {
  // The slack rationale: after allocate/release churn with grid demands, a
  // demand that exactly fills the server must still fit — in both
  // implementations, with the same verdict.
  ValueGen gen(5);
  for (int round = 0; round < 2000; ++round) {
    const double c = gen.positive() * 8.0;
    const double m = gen.positive() * 8.0;
    Resources cap{c, m};
    LegacyResources lcap{c, m};
    Resources used;
    LegacyResources lused;
    for (int step = 0; step < 6; ++step) {
      const double dc = gen.positive();
      const double dm = gen.positive();
      used += Resources{dc, dm};
      used -= Resources{dc, dm};
      lused += LegacyResources{dc, dm};
      lused -= LegacyResources{dc, dm};
    }
    const Resources fill = cap - used;
    const LegacyResources lfill{lcap.cpu - lused.cpu, lcap.mem - lused.mem};
    EXPECT_EQ((used + fill).fits_within(cap),
              (LegacyResources{lused} += lfill).fits_within(lcap));
    EXPECT_TRUE((used + fill).fits_within(cap));
  }
}

// ---------------------------------------------------------------------------
// N=3..kMaxDims property tests — no legacy oracle exists here.
// ---------------------------------------------------------------------------

void expect_biteq_nd(const Resources& a, const Resources& b) {
  for (std::size_t d = 0; d < Resources::kMaxDims; ++d) {
    EXPECT_EQ(bits(a[d]), bits(b[d])) << "dim " << d;
  }
}

Resources random_nd(ValueGen& gen, std::size_t dims) {
  Resources r;
  for (std::size_t d = 0; d < dims; ++d) r[d] = std::abs(gen.value());
  return r;
}

TEST(ResourcesNdProperties, FitsWithinIsMonotone) {
  ValueGen gen(900);
  for (std::size_t dims = 3; dims <= Resources::kMaxDims; ++dims) {
    for (int round = 0; round < 1000; ++round) {
      const Resources a = random_nd(gen, dims);
      const Resources slack = random_nd(gen, dims);
      // a fits in itself, in anything componentwise larger, and growing the
      // demand can only flip fit one way.
      EXPECT_TRUE(a.fits_within(a));
      EXPECT_TRUE(a.fits_within(a + slack));
      const Resources cap = random_nd(gen, dims);
      if ((a + slack).fits_within(cap)) {
        EXPECT_TRUE(a.fits_within(cap));
      }
    }
  }
}

TEST(ResourcesNdProperties, DotIsSymmetricAndLinear) {
  ValueGen gen(901);
  for (std::size_t dims = 3; dims <= Resources::kMaxDims; ++dims) {
    for (int round = 0; round < 1000; ++round) {
      const Resources a = random_nd(gen, dims);
      const Resources b = random_nd(gen, dims);
      const Resources c = random_nd(gen, dims);
      EXPECT_BITEQ(a.dot(b), b.dot(a));  // products commute bitwise
      EXPECT_NEAR(a.dot(b + c), a.dot(b) + a.dot(c), 1e-9 * (1.0 + a.dot(b + c)));
      EXPECT_GE(a.dot(a), 0.0);
    }
  }
}

TEST(ResourcesNdProperties, ClampIsIdempotentAndMinMaxBracket) {
  ValueGen gen(902);
  for (std::size_t dims = 3; dims <= Resources::kMaxDims; ++dims) {
    for (int round = 0; round < 1000; ++round) {
      Resources a = random_nd(gen, dims);
      Resources b = random_nd(gen, dims);
      a[dims - 1] = -a[dims - 1];  // force a clampable component
      const Resources once = a.clamped();
      expect_biteq_nd(once, once.clamped());
      EXPECT_TRUE(once.non_negative());
      EXPECT_TRUE(a.min(b).fits_within(a));
      EXPECT_TRUE(a.min(b).fits_within(b));
      EXPECT_TRUE(a.fits_within(a.max(b)));
      EXPECT_TRUE(b.fits_within(a.max(b)));
    }
  }
}

TEST(ResourcesNdProperties, DominantShareBoundsAndGpuAxis) {
  ValueGen gen(903);
  for (int round = 0; round < 1000; ++round) {
    Resources total;
    for (std::size_t d = 0; d < Resources::kMaxDims; ++d) total[d] = gen.positive() * 16.0;
    const Resources demand = random_nd(gen, Resources::kMaxDims);
    const double share = demand.dominant_share(total);
    for (std::size_t d = 0; d < Resources::kMaxDims; ++d) {
      EXPECT_GE(share + 1e-12, demand[d] / total[d]);
    }
    if (demand.fits_within(total)) {
      EXPECT_LE(share, 1.0 + 1e-9);
    }
  }
  // A GPU-only demand is dominated by the GPU axis.
  const Resources total{64.0, 256.0, 8.0};
  const Resources gpu_task{1.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(gpu_task.dominant_share(total), 0.5);
}

// ---------------------------------------------------------------------------
// operator== policy: exact, by design.
// ---------------------------------------------------------------------------

TEST(ResourcesNdEqualityPolicy, NearEqualVectorsAreDistinctButBothFit) {
  const Resources a{4.0, 16.0};
  Resources b = a;
  b[0] = 4.0 + 1e-12;
  // Exact equality separates them ...
  EXPECT_FALSE(a == b);
  // ... while the tolerant question — does this demand fit that capacity —
  // treats the 1e-12 noise as invisible in both directions.
  EXPECT_TRUE(a.fits_within(b));
  EXPECT_TRUE(b.fits_within(a));
  // And exactness is symmetric/reflexive on the nose.
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(b == a);
}

TEST(ResourcesNdEqualityPolicy, PlacementIndexGroupsKeyOnExactUsedVectors) {
  // Two identical servers whose used vectors differ by one ULP-scale write
  // must land in distinct groups (exact keys), and BOTH must remain visible
  // to placement queries — near-equal split groups are harmless by design,
  // approximate keys would be order-dependent.
  Cluster cluster = Cluster::uniform(2, {16.0, 64.0});
  PlacementIndex index(cluster);

  ASSERT_TRUE(cluster.server(0).allocate({4.0, 8.0}));
  index.on_allocation_changed(0);
  ASSERT_TRUE(cluster.server(1).allocate({4.0 + 1e-12, 8.0}));
  index.on_allocation_changed(1);
  ASSERT_FALSE(cluster.server(0).used() == cluster.server(1).used());

  // Both servers can host this demand; the candidate enumeration must see
  // both despite them sitting in different used-vector groups.
  const auto candidates = index.fitting_candidates({8.0, 16.0});
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0], 0);
  EXPECT_EQ(candidates[1], 1);

  // And the winner matches the brute-force linear scan's tie-break (lowest
  // id at equal score; the 1e-12 perturbation makes server 1's score a
  // hair different, so exact behavior is pinned by comparing to the scan).
  const Resources demand{2.0, 4.0};
  ServerId expected = -1;
  double best = 0.0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const Server& s = cluster.server(i);
    if (!s.can_fit(demand)) continue;
    const double score = demand.dot(s.free());
    if (expected < 0 || score > best) {
      expected = static_cast<ServerId>(i);
      best = score;
    }
  }
  EXPECT_EQ(index.best_fit(demand), expected);
}

}  // namespace
}  // namespace dollymp
