#include "dollymp/cluster/locality.h"

#include <gtest/gtest.h>

#include <set>

namespace dollymp {
namespace {

TEST(Locality, PlacesDistinctReplicas) {
  Cluster c = Cluster::uniform(10, {8, 16});
  const LocalityModel model(LocalityConfig{}, c);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto block = model.place_block(rng);
    ASSERT_EQ(block.replicas.size(), 2u);
    EXPECT_NE(block.replicas[0], block.replicas[1]);
  }
}

TEST(Locality, ReplicasSpanRacks) {
  // uniform() puts 40 servers per rack; 80 servers = 2 racks.
  Cluster c = Cluster::uniform(80, {8, 16});
  const LocalityModel model(LocalityConfig{}, c);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto block = model.place_block(rng);
    ASSERT_EQ(block.replicas.size(), 2u);
    const int rack0 = c.server(static_cast<std::size_t>(block.replicas[0])).rack();
    const int rack1 = c.server(static_cast<std::size_t>(block.replicas[1])).rack();
    EXPECT_NE(rack0, rack1) << "HDFS-style placement crosses racks";
  }
}

TEST(Locality, SingleRackFallsBackToDistinctServers) {
  Cluster c = Cluster::uniform(5, {8, 16});  // all rack 0
  const LocalityModel model(LocalityConfig{}, c);
  Rng rng(3);
  const auto block = model.place_block(rng);
  ASSERT_EQ(block.replicas.size(), 2u);
  EXPECT_NE(block.replicas[0], block.replicas[1]);
}

TEST(Locality, ReplicaCountClampedToClusterSize) {
  Cluster c = Cluster::uniform(1, {8, 16});
  LocalityConfig config;
  config.replicas = 3;
  const LocalityModel model(config, c);
  Rng rng(4);
  const auto block = model.place_block(rng);
  EXPECT_EQ(block.replicas.size(), 1u);
}

TEST(Locality, ClassifyLevels) {
  Cluster c = Cluster::uniform(80, {8, 16});
  const LocalityModel model(LocalityConfig{}, c);
  Rng rng(5);
  const auto block = model.place_block(rng);
  EXPECT_EQ(model.classify(block, block.replicas[0]), LocalityLevel::kNode);
  // A non-replica server on the same rack as replica 0.
  const int rack0 = c.server(static_cast<std::size_t>(block.replicas[0])).rack();
  for (const auto& s : c.servers()) {
    if (s.rack() == rack0 && s.id() != block.replicas[0] && s.id() != block.replicas[1]) {
      EXPECT_EQ(model.classify(block, s.id()), LocalityLevel::kRack);
      break;
    }
  }
}

TEST(Locality, PenaltiesOrdered) {
  Cluster c = Cluster::uniform(4, {8, 16});
  const LocalityModel model(LocalityConfig{}, c);
  EXPECT_DOUBLE_EQ(model.penalty(LocalityLevel::kNode), 1.0);
  EXPECT_GT(model.penalty(LocalityLevel::kRack), 1.0);
  EXPECT_GT(model.penalty(LocalityLevel::kOffRack), model.penalty(LocalityLevel::kRack));
}

TEST(Locality, DisabledIsTransparent) {
  Cluster c = Cluster::uniform(4, {8, 16});
  LocalityConfig config;
  config.enabled = false;
  const LocalityModel model(config, c);
  Rng rng(6);
  const auto block = model.place_block(rng);
  EXPECT_TRUE(block.replicas.empty());
  EXPECT_EQ(model.classify(block, 0), LocalityLevel::kNode);
  EXPECT_DOUBLE_EQ(model.penalty(LocalityLevel::kOffRack), 1.0);
}

TEST(Locality, ToStringNames) {
  EXPECT_STREQ(to_string(LocalityLevel::kNode), "NODE");
  EXPECT_STREQ(to_string(LocalityLevel::kRack), "RACK");
  EXPECT_STREQ(to_string(LocalityLevel::kOffRack), "OFF_RACK");
}

}  // namespace
}  // namespace dollymp
