#include "dollymp/cluster/background_load.h"

#include <gtest/gtest.h>

namespace dollymp {
namespace {

TEST(BackgroundLoad, SlowdownWithinBounds) {
  BackgroundLoadConfig config;
  config.max_slowdown = 8.0;
  BackgroundLoadProcess proc(config, 10, 42);
  for (std::size_t s = 0; s < 10; ++s) {
    for (double t = 0.0; t < 5000.0; t += 37.0) {
      const double slow = proc.slowdown(s, t);
      ASSERT_GE(slow, 1.0);
      ASSERT_LE(slow, 8.0);
    }
  }
}

TEST(BackgroundLoad, DeterministicGivenSeed) {
  const BackgroundLoadConfig config;
  BackgroundLoadProcess a(config, 4, 7);
  BackgroundLoadProcess b(config, 4, 7);
  for (double t = 0.0; t < 2000.0; t += 11.0) {
    for (std::size_t s = 0; s < 4; ++s) {
      ASSERT_DOUBLE_EQ(a.slowdown(s, t), b.slowdown(s, t));
    }
  }
}

TEST(BackgroundLoad, DifferentSeedsDiffer) {
  const BackgroundLoadConfig config;
  BackgroundLoadProcess a(config, 4, 1);
  BackgroundLoadProcess b(config, 4, 2);
  int differing = 0;
  for (double t = 0.0; t < 5000.0; t += 53.0) {
    if (a.slowdown(0, t) != b.slowdown(0, t)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(BackgroundLoad, DisabledIsAlwaysOne) {
  BackgroundLoadConfig config;
  config.enabled = false;
  BackgroundLoadProcess proc(config, 3, 9);
  for (double t = 0.0; t < 1000.0; t += 10.0) {
    EXPECT_DOUBLE_EQ(proc.slowdown(1, t), 1.0);
  }
}

TEST(BackgroundLoad, ContentionActuallyHappens) {
  BackgroundLoadConfig config;
  config.contention_probability = 0.5;
  BackgroundLoadProcess proc(config, 8, 3);
  bool saw_contention = false;
  for (std::size_t s = 0; s < 8 && !saw_contention; ++s) {
    for (double t = 0.0; t < 10000.0; t += 13.0) {
      if (proc.slowdown(s, t) > 1.0) {
        saw_contention = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_contention);
}

TEST(BackgroundLoad, ResetReproduces) {
  const BackgroundLoadConfig config;
  BackgroundLoadProcess proc(config, 2, 5);
  std::vector<double> first;
  for (double t = 0.0; t < 1000.0; t += 17.0) first.push_back(proc.slowdown(0, t));
  proc.reset(5);
  std::size_t i = 0;
  for (double t = 0.0; t < 1000.0; t += 17.0) {
    ASSERT_DOUBLE_EQ(proc.slowdown(0, t), first[i++]);
  }
}

TEST(BackgroundLoad, RejectsBadConfig) {
  BackgroundLoadConfig bad;
  bad.mean_interval_seconds = 0.0;
  EXPECT_THROW(BackgroundLoadProcess(bad, 1, 1), std::invalid_argument);
  BackgroundLoadConfig bad2;
  bad2.max_slowdown = 0.5;
  EXPECT_THROW(BackgroundLoadProcess(bad2, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace dollymp
