#include "dollymp/common/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dollymp/common/stats.h"

namespace dollymp {
namespace {

TEST(Pareto, RejectsBadParameters) {
  EXPECT_THROW(ParetoDist(0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(ParetoDist(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ParetoDist(-1.0, 2.0), std::invalid_argument);
}

TEST(Pareto, AnalyticMoments) {
  const ParetoDist d(2.0, 3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0 * 2.0 / 2.0);
  EXPECT_DOUBLE_EQ(d.variance(), 4.0 * 3.0 / (4.0 * 1.0));
}

TEST(Pareto, MomentsRequireShape) {
  EXPECT_THROW(ParetoDist(1.0, 1.0).mean(), std::domain_error);
  EXPECT_THROW(ParetoDist(1.0, 2.0).variance(), std::domain_error);
}

TEST(Pareto, TailFunction) {
  const ParetoDist d(1.0, 2.0);
  EXPECT_DOUBLE_EQ(d.tail(0.5), 1.0);
  EXPECT_DOUBLE_EQ(d.tail(1.0), 1.0);
  EXPECT_DOUBLE_EQ(d.tail(2.0), 0.25);
  EXPECT_DOUBLE_EQ(d.tail(10.0), 0.01);
}

TEST(Pareto, QuantileInvertsTail) {
  const ParetoDist d(1.5, 2.5);
  for (const double u : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    const double x = d.quantile(u);
    EXPECT_NEAR(1.0 - d.tail(x), u, 1e-9);
  }
}

TEST(Pareto, SampleMeanMatches) {
  const ParetoDist d(1.0, 3.0);
  Rng rng(1);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(d.sample(rng));
  EXPECT_NEAR(stats.mean(), d.mean(), 0.02);
  EXPECT_GE(stats.min(), 1.0);
}

TEST(Pareto, FitRoundTripsMeanAndCv) {
  const double mean = 40.0;
  const double cv = 0.8;
  const ParetoDist d = ParetoDist::fit(mean, cv);
  EXPECT_NEAR(d.mean(), mean, 1e-9);
  EXPECT_NEAR(d.stddev() / d.mean(), cv, 1e-9);
  EXPECT_GT(d.shape(), 2.0);  // fit always yields finite variance
}

TEST(Pareto, FitRejectsBadInput) {
  EXPECT_THROW(ParetoDist::fit(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ParetoDist::fit(1.0, 0.0), std::invalid_argument);
}

TEST(BoundedPareto, StaysInBounds) {
  const BoundedParetoDist d(1.0, 1.5, 20.0);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 20.0);
  }
}

TEST(BoundedPareto, MeanMatchesSamples) {
  const BoundedParetoDist d(1.0, 1.8, 8.0);
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(d.sample(rng));
  EXPECT_NEAR(stats.mean(), d.mean(), 0.01 * d.mean());
}

TEST(BoundedPareto, RejectsBadParameters) {
  EXPECT_THROW(BoundedParetoDist(1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BoundedParetoDist(0.0, 1.0, 2.0), std::invalid_argument);
}

TEST(Lognormal, FitMatchesMeanAndCv) {
  const auto d = LognormalDist::fit(50.0, 1.2);
  Rng rng(4);
  RunningStats stats;
  for (int i = 0; i < 300000; ++i) stats.add(d.sample(rng));
  EXPECT_NEAR(stats.mean(), 50.0, 1.0);
  EXPECT_NEAR(stats.cv(), 1.2, 0.05);
}

TEST(Lognormal, ZeroCvIsDegenerate) {
  const auto d = LognormalDist::fit(10.0, 0.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(d.sample(rng), 10.0, 1e-9);
  }
}

TEST(Exponential, MeanMatches) {
  const ExponentialDist d(7.0);
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(d.sample(rng));
  EXPECT_NEAR(stats.mean(), 7.0, 0.1);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(Normal, StandardMoments) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(sample_standard_normal(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

// ---- speedup function (Eq. 3) ----------------------------------------------

TEST(Speedup, IdentityAtOne) {
  const SpeedupFunction h(2.5);
  EXPECT_DOUBLE_EQ(h(1.0), 1.0);
}

TEST(Speedup, MatchesEq3) {
  const double alpha = 3.0;
  const SpeedupFunction h(alpha);
  for (const double x : {1.0, 2.0, 4.0, 8.0}) {
    EXPECT_NEAR(h(x), (alpha - 1.0 / x) / (alpha - 1.0), 1e-12);
  }
}

TEST(Speedup, StrictlyIncreasingAndConcave) {
  const SpeedupFunction h(2.2);
  double prev = h(1.0);
  double prev_gain = 1e9;
  for (int x = 2; x <= 64; ++x) {
    const double cur = h(static_cast<double>(x));
    const double gain = cur - prev;
    ASSERT_GT(cur, prev) << "h must be strictly increasing at x=" << x;
    ASSERT_LT(gain, prev_gain) << "h must be concave at x=" << x;
    prev = cur;
    prev_gain = gain;
  }
}

TEST(Speedup, BoundedByR) {
  const SpeedupFunction h(2.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(), 2.0);
  EXPECT_LT(h(1000.0), h.upper_bound());
}

TEST(Speedup, MatchesMinOfParetoCopies) {
  // E[min of r iid Pareto(alpha)] has shape r*alpha, so the expected
  // speedup theta / E[min] equals Eq. (3) exactly.  Verify by sampling.
  const double alpha = 2.5;
  const ParetoDist d(1.0, alpha);
  const SpeedupFunction h(alpha);
  Rng rng(8);
  const int copies = 3;
  RunningStats mins;
  for (int i = 0; i < 300000; ++i) {
    double best = d.sample(rng);
    for (int c = 1; c < copies; ++c) best = std::min(best, d.sample(rng));
    mins.add(best);
  }
  const double measured_speedup = d.mean() / mins.mean();
  EXPECT_NEAR(measured_speedup, h(copies), 0.02);
}

TEST(Speedup, FromStatsDegenerate) {
  const auto h = SpeedupFunction::from_stats(10.0, 0.0);
  EXPECT_TRUE(h.degenerate());
  EXPECT_DOUBLE_EQ(h(1.0), 1.0);
  EXPECT_DOUBLE_EQ(h(100.0), 1.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(), 1.0);
}

TEST(Speedup, RejectsBadAlphaAndX) {
  EXPECT_THROW(SpeedupFunction(1.0), std::invalid_argument);
  EXPECT_THROW(SpeedupFunction(0.5), std::invalid_argument);
  EXPECT_THROW(SpeedupFunction(2.0)(0.5), std::invalid_argument);
}

TEST(Speedup, MinCopiesFor) {
  const SpeedupFunction h(2.0);  // h(x) = 2 - 1/x, sup = 2
  // Budget covers theta outright: one copy suffices.
  EXPECT_EQ(h.min_copies_for(5.0, 5.0), 1);
  EXPECT_EQ(h.min_copies_for(5.0, 10.0), 1);
  // theta/budget = 1.5 -> need h(r) >= 1.5 -> 2 - 1/r >= 1.5 -> r >= 2.
  EXPECT_EQ(h.min_copies_for(7.5, 5.0), 2);
  // theta/budget = 2 is the supremum: unreachable.
  EXPECT_EQ(h.min_copies_for(10.0, 5.0), 0);
  // Verify minimality: h(r-1) < theta/budget <= h(r).
  const int r = h.min_copies_for(9.0, 5.0);
  ASSERT_GT(r, 1);
  EXPECT_GE(h(r) * 5.0, 9.0 - 1e-9);
  EXPECT_LT(h(r - 1) * 5.0, 9.0);
}

TEST(Speedup, MinCopiesZeroBudget) {
  const SpeedupFunction h(2.0);
  EXPECT_EQ(h.min_copies_for(1.0, 0.0), 0);
  EXPECT_EQ(SpeedupFunction::from_stats(5.0, 0.0).min_copies_for(10.0, 5.0), 0);
}

}  // namespace
}  // namespace dollymp
