// Experiment sweep driver (common/experiment.h): grid shape, preset
// catalogue, confidence intervals, and the headline determinism contract —
// the rendered JSON is byte-identical whatever thread count ran the grid.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dollymp/common/experiment.h"
#include "dollymp/common/thread_pool.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/workload/arrivals.h"

namespace dollymp {
namespace {

std::vector<JobSpec> sweep_workload(unsigned seed, int jobs_count) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < jobs_count; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 6, {1, 1}, 20.0, 30.0));
  }
  assign_poisson_arrivals(jobs, 12.0, seed + 100);
  return jobs;
}

SweepSpec make_spec() {
  SweepSpec spec;
  spec.cluster = Cluster::paper30();
  spec.base.slot_seconds = 1.0;
  spec.base.seed = 3;
  spec.jobs = sweep_workload(3, 10);
  spec.policies.push_back({"dollymp2", [] {
                             DollyMPConfig config;
                             config.clone_budget = 2;
                             return std::make_unique<DollyMPScheduler>(config);
                           }});
  spec.policies.push_back({"capacity", [] { return std::make_unique<CapacityScheduler>(); }});
  spec.fault_presets.push_back(make_fault_preset("healthy"));
  spec.fault_presets.push_back(make_fault_preset("crash"));
  spec.seeds = {3, 4, 5};
  return spec;
}

TEST(Sweep, GridShapeAndCellOrder) {
  const SweepResult result = run_sweep(make_spec());
  EXPECT_EQ(result.replications, 2u * 2u * 3u);
  ASSERT_EQ(result.cells.size(), 4u);
  // Policy-major, preset-minor.
  EXPECT_EQ(result.cells[0].policy, "dollymp2");
  EXPECT_EQ(result.cells[0].fault, "healthy");
  EXPECT_EQ(result.cells[1].policy, "dollymp2");
  EXPECT_EQ(result.cells[1].fault, "crash");
  EXPECT_EQ(result.cells[2].policy, "capacity");
  EXPECT_EQ(result.cells[2].fault, "healthy");
  EXPECT_EQ(result.cells[3].policy, "capacity");
  EXPECT_EQ(result.cells[3].fault, "crash");
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.replications, 3u) << cell.policy << "/" << cell.fault;
    EXPECT_EQ(cell.total_flowtime_seconds.count(), 3u);
    EXPECT_GT(cell.flowtime_seconds.count(), 0u);
    EXPECT_GT(cell.total_flowtime_seconds.mean(), 0.0);
  }
}

// The headline contract: same grid, any parallelism, identical JSON bytes.
TEST(Sweep, JsonBytesIdenticalAcrossThreadCounts) {
  const SweepSpec spec = make_spec();
  const std::string serial = render_sweep_json(run_sweep(spec, nullptr));
  for (const std::size_t workers : {2u, 4u}) {
    ThreadPool pool(workers);
    const std::string parallel = render_sweep_json(run_sweep(spec, &pool));
    EXPECT_EQ(serial, parallel) << "workers=" << workers;
  }
  EXPECT_NE(serial.find("\"schema\":\"dollymp-sweep-v1\""), std::string::npos);
  EXPECT_NE(serial.find("\"policy\":\"dollymp2\""), std::string::npos);
  EXPECT_NE(serial.find("ci95_lo"), std::string::npos);
  EXPECT_NE(serial.find("running_time_cdf"), std::string::npos);
  // No wall-clock / host / thread fields may leak into the document.
  EXPECT_EQ(serial.find("wall"), std::string::npos);
  EXPECT_EQ(serial.find("thread"), std::string::npos);
}

TEST(Sweep, EmptyPresetAndSeedListsFallBackToBase) {
  SweepSpec spec = make_spec();
  spec.fault_presets.clear();
  spec.seeds.clear();
  const SweepResult result = run_sweep(spec);
  EXPECT_EQ(result.replications, 2u);  // 2 policies x 1 preset x 1 seed
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].fault, "base");
  EXPECT_EQ(result.cells[0].replications, 1u);
}

TEST(Sweep, EmptyPolicyListThrows) {
  SweepSpec spec = make_spec();
  spec.policies.clear();
  EXPECT_THROW((void)run_sweep(spec), std::invalid_argument);
}

TEST(Sweep, FaultPresetCatalogue) {
  EXPECT_FALSE(make_fault_preset("healthy").failures.enabled);
  EXPECT_TRUE(make_fault_preset("crash").failures.enabled);
  EXPECT_TRUE(make_fault_preset("rack").faults.rack.enabled);
  EXPECT_TRUE(make_fault_preset("failslow").faults.fail_slow.enabled);
  EXPECT_TRUE(make_fault_preset("copyfault").faults.copy.enabled);
  const SweepFaultPreset all = make_fault_preset("all");
  EXPECT_TRUE(all.failures.enabled);
  EXPECT_TRUE(all.faults.rack.enabled);
  EXPECT_TRUE(all.faults.fail_slow.enabled);
  EXPECT_TRUE(all.faults.copy.enabled);
  EXPECT_THROW((void)make_fault_preset("meteor"), std::invalid_argument);
}

TEST(Sweep, MeanCi95Math) {
  RunningStats stats;
  for (const double v : {10.0, 12.0, 14.0, 16.0}) stats.add(v);
  const MeanCi ci = mean_ci95(stats);
  EXPECT_EQ(ci.n, 4u);
  EXPECT_DOUBLE_EQ(ci.mean, 13.0);
  const double half = 1.96 * ci.sd / 2.0;  // sqrt(4) = 2
  EXPECT_DOUBLE_EQ(ci.lo, 13.0 - half);
  EXPECT_DOUBLE_EQ(ci.hi, 13.0 + half);

  RunningStats one;
  one.add(5.0);
  const MeanCi degenerate = mean_ci95(one);
  EXPECT_DOUBLE_EQ(degenerate.lo, 5.0);
  EXPECT_DOUBLE_EQ(degenerate.hi, 5.0);
}

}  // namespace
}  // namespace dollymp
