// Invariant tests for the incremental free-capacity placement index.
//
// Strategy: drive a heterogeneous cluster through a long randomized
// sequence of place / release / fail / repair events, maintaining the
// index exactly as the simulator does, and after EVERY mutation check all
// four query kinds against brute-force linear references over the live
// cluster state — candidate sets, best-fit winners (including the
// lowest-id tie-break), first-fit, locality- and weight-aware picks.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/cluster/locality.h"
#include "dollymp/cluster/placement_index.h"
#include "dollymp/common/rng.h"
#include "dollymp/sched/scheduler.h"
#include "dollymp/sim/runtime_state.h"

namespace dollymp {
namespace {

// Demands on the trace model's grid (integral CPU, 0.5 GB memory) so
// allocate/release round-trips are bitwise lossless.
const std::vector<Resources> kPalette = {
    {1, 2}, {1, 0.5}, {2, 8}, {4, 16}, {6, 12}, {8, 24}, {12, 48}};

/// Brute-force fitting set: every up server whose free capacity holds
/// `demand`, ascending id.
std::vector<ServerId> brute_force_candidates(const Cluster& cluster,
                                             const Resources& demand) {
  std::vector<ServerId> out;
  for (const auto& server : cluster.servers()) {
    if (server.can_fit(demand)) out.push_back(server.id());
  }
  return out;
}

/// The DollyMP straggler-aware linear scan, reproduced verbatim as the
/// reference for weighted_best_fit.
ServerId weighted_reference(const Cluster& cluster, const Resources& demand,
                            const std::vector<double>& multipliers,
                            const BlockPlacement* boost_block) {
  ServerId best = kInvalidServer;
  double best_score = -1.0;
  for (const auto& server : cluster.servers()) {
    if (!server.can_fit(demand)) continue;
    double score = demand.dot(server.free()) *
                   multipliers[static_cast<std::size_t>(server.id())];
    if (boost_block != nullptr) {
      for (const auto replica : boost_block->replicas) {
        if (replica == server.id()) {
          score *= 1.25;
          break;
        }
      }
    }
    if (score > best_score) {
      best_score = score;
      best = server.id();
    }
  }
  return best;
}

struct LiveCopy {
  ServerId server;
  Resources demand;
};

class IndexFuzzHarness {
 public:
  IndexFuzzHarness(Cluster cluster, std::uint64_t seed)
      : cluster_(std::move(cluster)),
        locality_({}, cluster_),
        index_(cluster_),
        rng_(seed),
        multipliers_(cluster_.size(), 1.0) {}

  void check_all_queries() {
    for (const Resources& demand : kPalette) {
      EXPECT_EQ(index_.fitting_candidates(demand),
                brute_force_candidates(cluster_, demand));
      EXPECT_EQ(index_.best_fit(demand), best_fit_server(cluster_, demand));
      EXPECT_EQ(index_.first_fit(demand), first_fit_server(cluster_, demand));

      TaskRuntime task;
      task.demand = demand;
      task.block = block_;
      EXPECT_EQ(index_.locality_aware(locality_, task.block, demand),
                locality_aware_server(cluster_, locality_, task));
      EXPECT_EQ(index_.weighted_best_fit(demand, &block_),
                weighted_reference(cluster_, demand, multipliers_, &block_));
      EXPECT_EQ(index_.weighted_best_fit(demand, nullptr),
                weighted_reference(cluster_, demand, multipliers_, nullptr));
    }
  }

  void random_op() {
    const auto roll = rng_() % 100;
    if (roll < 45) {
      place_one();
    } else if (roll < 75) {
      release_one();
    } else if (roll < 85) {
      fail_one();
    } else if (roll < 95) {
      repair_one();
    } else {
      reweight_one();
    }
    if (rng_.chance(0.2)) block_ = locality_.place_block(rng_);
  }

  [[nodiscard]] std::size_t live_copies() const { return live_.size(); }

 private:
  void place_one() {
    const Resources& demand = kPalette[rng_() % kPalette.size()];
    const ServerId sid = index_.best_fit(demand);
    if (sid == kInvalidServer) return;
    ASSERT_TRUE(cluster_.server(static_cast<std::size_t>(sid)).allocate(demand));
    index_.on_allocation_changed(sid);
    live_.push_back({sid, demand});
  }

  void release_one() {
    if (live_.empty()) return;
    const std::size_t pick = rng_() % live_.size();
    const LiveCopy copy = live_[pick];
    live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(pick));
    cluster_.server(static_cast<std::size_t>(copy.server)).release(copy.demand);
    index_.on_allocation_changed(copy.server);
  }

  void fail_one() {
    const auto sid = static_cast<ServerId>(rng_() % cluster_.size());
    auto& server = cluster_.server(static_cast<std::size_t>(sid));
    if (server.is_down()) return;
    // Simulator order: mark down, retire from the index, then kill the
    // victim's copies (their releases land while the server is down).
    server.set_down(true);
    index_.on_server_down(sid);
    for (std::size_t i = live_.size(); i-- > 0;) {
      if (live_[i].server != sid) continue;
      server.release(live_[i].demand);
      index_.on_allocation_changed(sid);
      live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  void repair_one() {
    const auto sid = static_cast<ServerId>(rng_() % cluster_.size());
    auto& server = cluster_.server(static_cast<std::size_t>(sid));
    if (!server.is_down()) return;
    server.set_down(false);
    index_.on_server_up(sid);
  }

  void reweight_one() {
    const auto sid = static_cast<ServerId>(rng_() % cluster_.size());
    const double weight = rng_.uniform(1.0 / 16.0, 2.0);
    multipliers_[static_cast<std::size_t>(sid)] = weight;
    index_.set_multiplier(sid, weight);
  }

  Cluster cluster_;
  LocalityModel locality_;
  PlacementIndex index_;
  Rng rng_;
  std::vector<double> multipliers_;
  std::vector<LiveCopy> live_;
  BlockPlacement block_;
};

TEST(PlacementIndex, RandomizedChurnMatchesBruteForce) {
  IndexFuzzHarness harness(Cluster::google_like(80), 17);
  harness.check_all_queries();  // pristine cluster
  for (int op = 0; op < 600; ++op) {
    harness.random_op();
    harness.check_all_queries();
  }
  EXPECT_GT(harness.live_copies(), 0u);
}

TEST(PlacementIndex, RandomizedChurnHeterogeneousTraceInventory) {
  IndexFuzzHarness harness(Cluster::google_trace(60), 23);
  for (int op = 0; op < 400; ++op) {
    harness.random_op();
    harness.check_all_queries();
  }
}

TEST(PlacementIndex, EmptyClusterAnswersInvalid) {
  Cluster cluster;
  PlacementIndex index(cluster);
  EXPECT_EQ(index.best_fit({1, 1}), kInvalidServer);
  EXPECT_EQ(index.first_fit({1, 1}), kInvalidServer);
  EXPECT_EQ(index.weighted_best_fit({1, 1}, nullptr), kInvalidServer);
  EXPECT_TRUE(index.fitting_candidates({1, 1}).empty());
  EXPECT_EQ(index.size(), 0u);
}

TEST(PlacementIndex, AllServersFailedAnswersInvalid) {
  Cluster cluster = Cluster::uniform(8, {4, 4});
  PlacementIndex index(cluster);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    cluster.server(i).set_down(true);
    index.on_server_down(static_cast<ServerId>(i));
  }
  EXPECT_EQ(index.best_fit({1, 1}), kInvalidServer);
  EXPECT_EQ(index.first_fit({1, 1}), kInvalidServer);
  EXPECT_TRUE(index.fitting_candidates({1, 1}).empty());
  // Repair one: it must come back exactly as the linear scan sees it.
  cluster.server(3).set_down(false);
  index.on_server_up(3);
  EXPECT_EQ(index.best_fit({1, 1}), best_fit_server(cluster, {1, 1}));
  EXPECT_EQ(index.first_fit({1, 1}), 3);
}

TEST(PlacementIndex, CountersTrackQueriesAndUpdates) {
  Cluster cluster = Cluster::uniform(4, {4, 4});
  PlacementIndex index(cluster);
  EXPECT_EQ(index.counters().queries, 0u);
  (void)index.best_fit({1, 1});
  (void)index.first_fit({1, 1});
  EXPECT_EQ(index.counters().queries, 2u);
  ASSERT_TRUE(cluster.server(0).allocate({1, 1}));
  index.on_allocation_changed(0);
  EXPECT_EQ(index.counters().updates, 1u);
}

}  // namespace
}  // namespace dollymp
