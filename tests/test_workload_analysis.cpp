#include "dollymp/workload/analysis.h"

#include <gtest/gtest.h>

#include "dollymp/workload/apps.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

namespace dollymp {
namespace {

TEST(WorkloadAnalysis, EmptyWorkload) {
  const WorkloadStats stats = analyze_workload({});
  EXPECT_EQ(stats.jobs, 0u);
  EXPECT_EQ(stats.tasks, 0);
  EXPECT_DOUBLE_EQ(offered_load({}, Cluster::paper30()), 0.0);
}

TEST(WorkloadAnalysis, HandComputedTotals) {
  std::vector<JobSpec> jobs;
  // Job 0: 4 tasks x 10 s x (2, 4).
  jobs.push_back(JobSpec::single_phase(0, 4, {2, 4}, 10.0, 0.0, 0.0));
  // Job 1: two-phase chain, 2 x 5 s x (1, 1) + 1 x 20 s x (1, 2).
  JobSpec two;
  two.id = 1;
  two.arrival_seconds = 100.0;
  two.phases.push_back({"a", 2, {1, 1}, 5.0, 0.0, {}});
  two.phases.push_back({"b", 1, {1, 2}, 20.0, 10.0, {0}});
  jobs.push_back(two);

  const WorkloadStats stats = analyze_workload(jobs);
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_EQ(stats.phases, 3);
  EXPECT_EQ(stats.tasks, 7);
  EXPECT_DOUBLE_EQ(stats.cpu_core_seconds, 4 * 10 * 2 + 2 * 5 * 1 + 1 * 20 * 1);
  EXPECT_DOUBLE_EQ(stats.mem_gb_seconds, 4 * 10 * 4 + 2 * 5 * 1 + 1 * 20 * 2);
  EXPECT_DOUBLE_EQ(stats.arrival_window_seconds, 100.0);
  // Critical paths: 10 and 25 -> mean 17.5.
  EXPECT_DOUBLE_EQ(stats.mean_critical_path_seconds, 17.5);
  // One of three phases has cv = 0.5 (not > 0.5): none straggler-prone.
  EXPECT_DOUBLE_EQ(stats.straggler_phase_fraction, 0.0);
}

TEST(WorkloadAnalysis, OfferedLoadDimensions) {
  // Cluster 10 cores / 100 GB; work 500 core-s and 8000 GB-s over 100 s:
  // cpu load 0.5, mem load 0.8 -> max 0.8.
  Cluster cluster = Cluster::uniform(1, {10, 100});
  std::vector<JobSpec> jobs;
  jobs.push_back(JobSpec::single_phase(0, 10, {1, 16}, 50.0, 0.0, 0.0));
  jobs.push_back(JobSpec::single_task(1, {1, 1}, 1.0, 0.0, 100.0));
  EXPECT_NEAR(offered_load(jobs, cluster),
              (10 * 50 * 16 + 1) / 100.0 / 100.0, 1e-9);
}

TEST(WorkloadAnalysis, BatchArrivalsHaveNoRate) {
  auto jobs = TraceModel({}, 3).sample_jobs(10);
  assign_batch_arrivals(jobs);
  EXPECT_DOUBLE_EQ(offered_load(jobs, Cluster::paper30()), 0.0);
  EXPECT_DOUBLE_EQ(analyze_workload(jobs).arrival_window_seconds, 0.0);
}

TEST(WorkloadAnalysis, LoadScalesWithGap) {
  TraceModel model({}, 5);
  auto fast = model.sample_jobs(200);
  auto slow = fast;
  assign_fixed_arrivals(fast, 5.0);
  assign_fixed_arrivals(slow, 50.0);
  const Cluster cluster = Cluster::google_like(50);
  const double fast_load = offered_load(fast, cluster);
  const double slow_load = offered_load(slow, cluster);
  EXPECT_NEAR(fast_load / slow_load, 10.0, 0.1);
}

TEST(WorkloadAnalysis, StragglerFractionTracksTraceModel) {
  TraceModelConfig config;
  TraceModel model(config, 7);
  const auto jobs = model.sample_jobs(400);
  const WorkloadStats stats = analyze_workload(jobs);
  EXPECT_NEAR(stats.straggler_phase_fraction, config.straggler_phase_fraction, 0.08);
}

TEST(WorkloadAnalysis, ReportMentionsKeyNumbers) {
  auto jobs = std::vector<JobSpec>{make_wordcount(0, 4.0)};
  const std::string report = render_workload_report(jobs, Cluster::paper30());
  EXPECT_NE(report.find("1 jobs"), std::string::npos);
  EXPECT_NE(report.find("offered load"), std::string::npos);
  EXPECT_NE(report.find("30-server"), std::string::npos);
}

}  // namespace
}  // namespace dollymp
