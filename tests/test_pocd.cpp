// PoCD analytics (learn/pocd.h): closed forms against Monte Carlo, edge
// cases, and the cloning-vs-speculation comparison from the Chronos
// discussion (paper Section 7).
#include "dollymp/learn/pocd.h"

#include <gtest/gtest.h>

#include "dollymp/common/rng.h"

namespace dollymp {
namespace {

constexpr double kTheta = 30.0;
constexpr double kSigma = 25.0;

TEST(Pocd, DeterministicTasksAreStepFunctions) {
  EXPECT_DOUBLE_EQ(task_pocd_cloning(10.0, 0.0, 1, 9.9), 0.0);
  EXPECT_DOUBLE_EQ(task_pocd_cloning(10.0, 0.0, 1, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(task_pocd_cloning(10.0, 0.0, 3, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(task_pocd_speculation(10.0, 0.0, 5.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(task_pocd_speculation(10.0, 0.0, 5.0, 9.0), 0.0);
}

TEST(Pocd, MonotoneInDeadlineAndCopies) {
  double prev = -1.0;
  for (double t = 10.0; t <= 200.0; t += 10.0) {
    const double p = task_pocd_cloning(kTheta, kSigma, 1, t);
    ASSERT_GE(p, prev);
    prev = p;
  }
  for (int r = 1; r < 6; ++r) {
    EXPECT_LT(task_pocd_cloning(kTheta, kSigma, r, 40.0),
              task_pocd_cloning(kTheta, kSigma, r + 1, 40.0));
  }
}

TEST(Pocd, CloningMatchesMonteCarlo) {
  const ParetoDist dist = ParetoDist::fit(kTheta, kSigma / kTheta);
  Rng rng(5);
  const double deadline = 45.0;
  const int copies = 2;
  int hits = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    double best = dist.sample(rng);
    for (int c = 1; c < copies; ++c) best = std::min(best, dist.sample(rng));
    hits += best <= deadline ? 1 : 0;
  }
  const double simulated = static_cast<double>(hits) / trials;
  EXPECT_NEAR(task_pocd_cloning(kTheta, kSigma, copies, deadline), simulated, 0.01);
}

TEST(Pocd, SpeculationMatchesMonteCarlo) {
  const ParetoDist dist = ParetoDist::fit(kTheta, kSigma / kTheta);
  Rng rng(7);
  const double s = 35.0;
  const double deadline = 90.0;
  int hits = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const double original = dist.sample(rng);
    // Draw the backup regardless to keep the stream aligned with the
    // independence approximation the closed form uses.
    const double backup = dist.sample(rng);
    const bool meets = original <= deadline || (s + backup) <= deadline;
    hits += meets ? 1 : 0;
  }
  const double simulated = static_cast<double>(hits) / trials;
  EXPECT_NEAR(task_pocd_speculation(kTheta, kSigma, s, deadline), simulated, 0.015);
}

TEST(Pocd, EarlyCloningBeatsLateSpeculationAtTightDeadlines) {
  // The Chronos/Dolly argument: for small jobs and tight deadlines,
  // launch-time clones dominate any speculation that waits to observe.
  const double deadline = 50.0;
  const double clone_p = task_pocd_cloning(kTheta, kSigma, 2, deadline);
  for (const double s : {20.0, 30.0, 40.0}) {
    EXPECT_GT(clone_p, task_pocd_speculation(kTheta, kSigma, s, deadline))
        << "speculation at " << s;
  }
  // With a very loose deadline the gap closes.
  const double loose = 100.0 * kTheta;
  EXPECT_NEAR(task_pocd_cloning(kTheta, kSigma, 2, loose),
              task_pocd_speculation(kTheta, kSigma, 30.0, loose), 5e-3);
}

TEST(Pocd, PhaseRequiresAllTasks) {
  PhaseSpec phase{"p", 10, {1, 1}, kTheta, kSigma, {}};
  const double single = task_pocd_cloning(kTheta, kSigma, 2, 60.0);
  EXPECT_NEAR(phase_pocd_cloning(phase, 2, 60.0), std::pow(single, 10), 1e-12);
  // More tasks -> lower phase PoCD.
  PhaseSpec bigger = phase;
  bigger.task_count = 40;
  EXPECT_LT(phase_pocd_cloning(bigger, 2, 60.0), phase_pocd_cloning(phase, 2, 60.0));
}

TEST(Pocd, ChainJobSplitsDeadline) {
  JobSpec job;
  job.id = 0;
  job.phases.push_back({"a", 2, {1, 1}, 20.0, 15.0, {}});
  job.phases.push_back({"b", 1, {1, 1}, 40.0, 30.0, {0}});
  const double pocd = job_pocd_cloning(job, 2, 180.0);
  // Proportional split: 60 s for phase a, 120 s for phase b.
  const double expected = phase_pocd_cloning(job.phases[0], 2, 60.0) *
                          phase_pocd_cloning(job.phases[1], 2, 120.0);
  EXPECT_NEAR(pocd, expected, 1e-12);
  EXPECT_GT(pocd, 0.0);
  EXPECT_LT(pocd, 1.0);
}

TEST(Pocd, NonChainDagRejected) {
  JobSpec diamond;
  diamond.id = 0;
  diamond.phases.push_back({"a", 1, {1, 1}, 10.0, 1.0, {}});
  diamond.phases.push_back({"b", 1, {1, 1}, 10.0, 1.0, {0}});
  diamond.phases.push_back({"c", 1, {1, 1}, 10.0, 1.0, {0}});
  EXPECT_THROW((void)job_pocd_cloning(diamond, 2, 100.0), std::invalid_argument);
}

TEST(Pocd, CopiesForTarget) {
  PhaseSpec phase{"p", 5, {1, 1}, kTheta, kSigma, {}};
  const int needed = copies_for_target_pocd(phase, 0.9, 90.0);
  ASSERT_GT(needed, 0);
  EXPECT_GE(phase_pocd_cloning(phase, needed, 90.0), 0.9);
  if (needed > 1) {
    EXPECT_LT(phase_pocd_cloning(phase, needed - 1, 90.0), 0.9);
  }
  // Impossible target within the cap.
  EXPECT_EQ(copies_for_target_pocd(phase, 0.999999, 25.0, 2), 0);
}

TEST(Pocd, InputValidation) {
  EXPECT_THROW((void)task_pocd_cloning(0.0, 1.0, 1, 10.0), std::invalid_argument);
  EXPECT_THROW((void)task_pocd_cloning(10.0, -1.0, 1, 10.0), std::invalid_argument);
  EXPECT_THROW((void)task_pocd_cloning(10.0, 1.0, 0, 10.0), std::invalid_argument);
  EXPECT_THROW((void)task_pocd_speculation(10.0, 1.0, -1.0, 10.0), std::invalid_argument);
  PhaseSpec phase{"p", 1, {1, 1}, 10.0, 5.0, {}};
  EXPECT_THROW((void)copies_for_target_pocd(phase, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW((void)copies_for_target_pocd(phase, 0.5, 10.0, 0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(task_pocd_cloning(10.0, 5.0, 1, 0.0), 0.0);
}

}  // namespace
}  // namespace dollymp
