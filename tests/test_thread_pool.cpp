#include "dollymp/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace dollymp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelFor, CoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 5) throw std::logic_error("bad index");
                            }),
               std::logic_error);
}

TEST(ParallelMap, PreservesOrder) {
  ThreadPool pool(4);
  const auto result =
      parallel_map(pool, 50, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(result.size(), 50u);
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace dollymp
