#include "dollymp/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

namespace dollymp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelFor, CoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 5) throw std::logic_error("bad index");
                            }),
               std::logic_error);
}

TEST(ParallelMap, PreservesOrder) {
  ThreadPool pool(4);
  const auto result =
      parallel_map(pool, 50, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(result.size(), 50u);
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] { return 1; }), std::runtime_error);
  EXPECT_THROW(pool.post([] {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotentAndDrains) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 50; ++i) {
    (void)pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.shutdown();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(pool.size(), 0u);
  pool.shutdown();  // second call is a no-op
  EXPECT_EQ(pool.size(), 0u);
}

TEST(ParallelFor, NullPoolRunsInlineOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  std::vector<int> hits(64, 0);
  bool all_inline = true;
  parallel_for(nullptr, hits.size(), [&](std::size_t i) {
    hits[i] += 1;
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, PointerOverloadCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);  // not divisible by 4
  parallel_for(&pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ShardRange, PartitionsEveryIndexExactlyOnce) {
  for (const std::size_t n : {0u, 1u, 2u, 3u, 7u, 8u, 100u, 101u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 4u, 7u, 16u}) {
      std::vector<int> hits(n, 0);
      std::size_t prev_end = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [begin, end] = shard_range(s, shards, n);
        EXPECT_EQ(begin, prev_end) << "gap/overlap at shard " << s;
        EXPECT_LE(begin, end);
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
        prev_end = end;
      }
      EXPECT_EQ(prev_end, n);
      for (const int h : hits) EXPECT_EQ(h, 1);
    }
  }
}

TEST(ShardCount, SaturatesAtPoolSizeAndItemCount) {
  ThreadPool pool(4);
  EXPECT_EQ(shard_count(&pool, 0), 0u);
  EXPECT_EQ(shard_count(&pool, 1), 1u);
  EXPECT_EQ(shard_count(&pool, 3), 3u);
  EXPECT_EQ(shard_count(&pool, 100), 4u);
  EXPECT_EQ(shard_count(nullptr, 100), 1u);
  ThreadPool single(1);
  EXPECT_EQ(shard_count(&single, 100), 1u);
}

TEST(RunShards, LowestShardExceptionWins) {
  ThreadPool pool(4);
  // Both shard 1 and shard 3 throw on every attempt; the one the caller
  // sees must deterministically be the lowest-numbered shard's.
  for (int attempt = 0; attempt < 20; ++attempt) {
    try {
      run_shards(&pool, 4, 4, [](std::size_t s, std::size_t, std::size_t) {
        if (s == 1) throw std::runtime_error("shard-1");
        if (s == 3) throw std::runtime_error("shard-3");
      });
      FAIL() << "run_shards must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "shard-1");
    }
  }
}

TEST(RunShards, SingleShardRunsInline) {
  const auto caller = std::this_thread::get_id();
  bool ran = false;
  run_shards(nullptr, 1, 10, [&](std::size_t s, std::size_t begin, std::size_t end) {
    EXPECT_EQ(s, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ShardStatsTest, IgnoresSerialSectionsAndTracksWidestShard) {
  ShardStats stats;
  stats.note(1, 100);  // serial dispatch: not a parallel section
  stats.note(0, 0);
  EXPECT_EQ(stats.sections, 0);
  stats.note(4, 10);  // shards of 3,3,2,2 -> widest ceil(10/4)=3
  stats.note(2, 7);   // widest ceil(7/2)=4
  EXPECT_EQ(stats.sections, 2);
  EXPECT_EQ(stats.shards, 6);
  EXPECT_EQ(stats.items, 17);
  EXPECT_EQ(stats.max_shard_items, 4);
}

}  // namespace
}  // namespace dollymp
