#include "dollymp/sched/knapsack.h"

#include <gtest/gtest.h>

#include "dollymp/common/rng.h"

namespace dollymp {
namespace {

TEST(KnapsackUnit, EmptyInput) {
  const auto pick = knapsack_unit_profit({}, 10.0);
  EXPECT_TRUE(pick.chosen.empty());
  EXPECT_DOUBLE_EQ(pick.total_profit, 0.0);
}

TEST(KnapsackUnit, TakesSmallestWeightsFirst) {
  const auto pick = knapsack_unit_profit({5.0, 1.0, 3.0, 2.0}, 6.0);
  // Sorted weights 1,2,3 fit (sum 6); 5 does not.
  EXPECT_EQ(pick.chosen, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(pick.total_weight, 6.0);
  EXPECT_DOUBLE_EQ(pick.total_profit, 3.0);
}

TEST(KnapsackUnit, ZeroBudget) {
  const auto pick = knapsack_unit_profit({1.0, 2.0}, 0.0);
  EXPECT_TRUE(pick.chosen.empty());
}

TEST(KnapsackUnit, ZeroWeightItemsAlwaysFit) {
  const auto pick = knapsack_unit_profit({0.0, 0.0, 5.0}, 1.0);
  EXPECT_EQ(pick.total_profit, 2.0);
}

TEST(KnapsackUnit, RejectsNegativeWeights) {
  EXPECT_THROW(knapsack_unit_profit({-1.0}, 1.0), std::invalid_argument);
}

TEST(KnapsackUnit, MatchesBruteForceCount) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n = static_cast<std::size_t>(rng.range(1, 12));
    std::vector<double> weights(n);
    std::vector<double> unit(n, 1.0);
    for (auto& w : weights) w = rng.uniform(0.0, 10.0);
    const double budget = rng.uniform(0.0, 30.0);
    const auto greedy = knapsack_unit_profit(weights, budget);
    const auto exact = knapsack_brute_force(weights, unit, budget);
    ASSERT_DOUBLE_EQ(greedy.total_profit, exact.total_profit)
        << "greedy must be optimal for unit profits (trial " << trial << ")";
    ASSERT_LE(greedy.total_weight, budget + 1e-9);
  }
}

TEST(KnapsackDp, MatchesBruteForceGeneralProfits) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const auto n = static_cast<std::size_t>(rng.range(1, 10));
    std::vector<double> weights(n);
    std::vector<double> profits(n);
    for (std::size_t i = 0; i < n; ++i) {
      weights[i] = rng.uniform(0.5, 8.0);
      profits[i] = rng.uniform(0.1, 5.0);
    }
    const double budget = rng.uniform(1.0, 20.0);
    const auto dp = knapsack_dp(weights, profits, budget, 8192);
    const auto exact = knapsack_brute_force(weights, profits, budget);
    // DP rounds weights up, so it may be slightly conservative but must be
    // feasible and near optimal.
    ASSERT_LE(dp.total_weight, budget + 1e-9);
    ASSERT_GE(dp.total_profit, exact.total_profit * 0.95 - 1e-9)
        << "trial " << trial;
  }
}

TEST(KnapsackDp, ExactOnIntegerWeights) {
  // Optimum is items {1, 2}: weight 4 + 5 = 9 fits the budget exactly with
  // profit 5 + 6 = 11.
  const std::vector<double> w{3.0, 4.0, 5.0};
  const std::vector<double> p{4.0, 5.0, 6.0};
  const auto dp = knapsack_dp(w, p, 9.0, 9);
  EXPECT_DOUBLE_EQ(dp.total_profit, 11.0);
}

TEST(KnapsackDp, InputValidation) {
  EXPECT_THROW(knapsack_dp({1.0}, {1.0, 2.0}, 5.0), std::invalid_argument);
  EXPECT_THROW(knapsack_dp({1.0}, {1.0}, 5.0, 0), std::invalid_argument);
  EXPECT_THROW(knapsack_dp({-1.0}, {1.0}, 5.0), std::invalid_argument);
  const auto empty = knapsack_dp({}, {}, 5.0);
  EXPECT_TRUE(empty.chosen.empty());
}

TEST(KnapsackBrute, Basics) {
  const auto pick = knapsack_brute_force({2.0, 3.0}, {3.0, 4.0}, 4.0);
  EXPECT_DOUBLE_EQ(pick.total_profit, 4.0);
  EXPECT_EQ(pick.chosen, (std::vector<std::size_t>{1}));
  EXPECT_THROW(knapsack_brute_force(std::vector<double>(25, 1.0),
                                    std::vector<double>(25, 1.0), 5.0),
               std::invalid_argument);
}

TEST(KnapsackBnb, MatchesBruteForceExactly) {
  Rng rng(11);
  for (int trial = 0; trial < 150; ++trial) {
    const auto n = static_cast<std::size_t>(rng.range(1, 14));
    std::vector<double> weights(n);
    std::vector<double> profits(n);
    for (std::size_t i = 0; i < n; ++i) {
      weights[i] = rng.uniform(0.2, 6.0);
      profits[i] = rng.uniform(0.1, 9.0);
    }
    const double budget = rng.uniform(0.5, 18.0);
    const auto bnb = knapsack_branch_and_bound(weights, profits, budget);
    const auto exact = knapsack_brute_force(weights, profits, budget);
    ASSERT_NEAR(bnb.total_profit, exact.total_profit, 1e-9) << "trial " << trial;
    ASSERT_LE(bnb.total_weight, budget + 1e-9);
  }
}

TEST(KnapsackBnb, HandlesZeroWeightItems) {
  const auto pick = knapsack_branch_and_bound({0.0, 2.0, 3.0}, {1.0, 5.0, 4.0}, 2.0);
  EXPECT_DOUBLE_EQ(pick.total_profit, 6.0);  // zero-weight item + item 1
}

TEST(KnapsackBnb, EdgeCases) {
  EXPECT_TRUE(knapsack_branch_and_bound({}, {}, 5.0).chosen.empty());
  EXPECT_TRUE(knapsack_branch_and_bound({1.0}, {1.0}, -1.0).chosen.empty());
  EXPECT_THROW(knapsack_branch_and_bound({1.0}, {1.0, 2.0}, 5.0), std::invalid_argument);
  EXPECT_THROW(knapsack_branch_and_bound({-1.0}, {1.0}, 5.0), std::invalid_argument);
}

TEST(KnapsackBnb, ScalesBeyondBruteForce) {
  // 60 items is far beyond 2^24 enumeration; the bound must prune well.
  Rng rng(13);
  std::vector<double> weights(60);
  std::vector<double> profits(60);
  for (std::size_t i = 0; i < 60; ++i) {
    weights[i] = rng.uniform(0.5, 5.0);
    profits[i] = rng.uniform(0.5, 5.0);
  }
  const auto pick = knapsack_branch_and_bound(weights, profits, 30.0);
  EXPECT_GT(pick.total_profit, 0.0);
  EXPECT_LE(pick.total_weight, 30.0 + 1e-9);
  // It can never do worse than the DP approximation.
  const auto dp = knapsack_dp(weights, profits, 30.0, 4096);
  EXPECT_GE(pick.total_profit, dp.total_profit - 1e-9);
}

// Property sweep: greedy unit-profit solution is never beaten and always
// feasible across budgets.
class KnapsackBudgetSweep : public testing::TestWithParam<double> {};

TEST_P(KnapsackBudgetSweep, GreedyOptimalAndFeasible) {
  Rng rng(static_cast<std::uint64_t>(GetParam() * 1000.0) + 3);
  std::vector<double> weights(14);
  for (auto& w : weights) w = rng.uniform(0.1, 4.0);
  const std::vector<double> unit(weights.size(), 1.0);
  const double budget = GetParam();
  const auto greedy = knapsack_unit_profit(weights, budget);
  const auto exact = knapsack_brute_force(weights, unit, budget);
  EXPECT_DOUBLE_EQ(greedy.total_profit, exact.total_profit);
  EXPECT_LE(greedy.total_weight, budget + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Budgets, KnapsackBudgetSweep,
                         testing::Values(0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0));

}  // namespace
}  // namespace dollymp
