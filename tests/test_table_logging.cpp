#include <gtest/gtest.h>

#include "dollymp/common/logging.h"
#include "dollymp/common/table.h"

namespace dollymp {
namespace {

TEST(ConsoleTable, RendersAlignedColumns) {
  ConsoleTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ConsoleTable, RowWidthMismatchThrows) {
  ConsoleTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"x"}), std::invalid_argument);
  EXPECT_THROW(ConsoleTable({}), std::invalid_argument);
}

TEST(ConsoleTable, ValueRows) {
  ConsoleTable t({"x", "y"});
  t.add_row_values({1.234, 5.678}, 1);
  t.add_labeled_row("row", {9.0}, 0);
  EXPECT_EQ(t.rows(), 2u);
  const std::string out = t.render();
  EXPECT_NE(out.find("1.2"), std::string::npos);
  EXPECT_NE(out.find("row"), std::string::npos);
}

TEST(ConsoleTable, FormatDouble) {
  EXPECT_EQ(ConsoleTable::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(ConsoleTable::format_double(2.0, 0), "2");
}

TEST(ConsoleTable, CaptionedRender) {
  ConsoleTable t({"a"});
  t.add_row({"1"});
  const std::string out = t.render("My caption");
  EXPECT_NE(out.find("My caption"), std::string::npos);
}

TEST(Banner, ContainsTitle) {
  EXPECT_NE(banner("Fig 4").find("Fig 4"), std::string::npos);
}

TEST(Logging, LevelGating) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kTrace);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  set_log_level(old);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

TEST(Logging, MacroCompilesAndGates) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kOff);
  // Must not crash or emit; mostly a compile/UB check.
  DOLLYMP_LOG(kInfo) << "invisible " << 42;
  set_log_level(old);
}

}  // namespace
}  // namespace dollymp
