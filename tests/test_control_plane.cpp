// Tests for the event/timer-driven simulator control plane.
//
// The refactor's contract: the simulator visits exactly the slots where an
// event lands (arrival, completion, failure, repair) or a scheduler
// requested a wakeup, and fast-forwards across everything else.  The
// paired-polling tests reconstruct the old every-slot stepping with an
// adapter that requests a wakeup each slot, and assert the event-driven
// path makes bit-identical decisions while invoking the scheduler far
// less often.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dollymp/metrics/report.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/carbyne.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/hopper.h"
#include "dollymp/sched/simple_priority.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/arrivals.h"

namespace dollymp {
namespace {

SimConfig base_config(std::uint64_t seed = 1) {
  SimConfig config;
  config.slot_seconds = 1.0;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  return config;
}

// ---- every-slot polling adapter -------------------------------------------
//
// Reproduces the seed's `wants_every_slot()` semantics on top of
// request_wakeup: after each invocation it asks to be woken at the next
// slot, so as long as any job is active the simulator visits every slot —
// exactly the old polling loop.  Wrapping a policy in this adapter is the
// "before" side of the paired refactor tests.
class EverySlotAdapter final : public Scheduler {
 public:
  explicit EverySlotAdapter(std::unique_ptr<Scheduler> inner) : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  void reset() override { inner_->reset(); }
  void on_job_arrival(SchedulerContext& ctx) override { inner_->on_job_arrival(ctx); }
  void schedule(SchedulerContext& ctx) override {
    inner_->schedule(ctx);
    ctx.request_wakeup(ctx.now() + 1);
  }
  void on_copy_finished(SchedulerContext& ctx, const JobRuntime& job,
                        const PhaseRuntime& phase, const TaskRuntime& task,
                        const CopyRuntime& copy) override {
    inner_->on_copy_finished(ctx, job, phase, task, copy);
  }
  void on_phase_completed(SchedulerContext& ctx, const JobRuntime& job,
                          const PhaseRuntime& phase) override {
    inner_->on_phase_completed(ctx, job, phase);
  }
  void on_job_completed(SchedulerContext& ctx, const JobRuntime& job) override {
    inner_->on_job_completed(ctx, job);
  }
  void on_server_failed(SchedulerContext& ctx, ServerId server) override {
    inner_->on_server_failed(ctx, server);
  }
  void on_server_repaired(SchedulerContext& ctx, ServerId server) override {
    inner_->on_server_repaired(ctx, server);
  }

 private:
  std::unique_ptr<Scheduler> inner_;
};

// Greedy FIFO placement plus a programmable wakeup, recording every
// invocation slot.
class WakeupProbe final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "wakeup-probe"; }
  void schedule(SchedulerContext& ctx) override {
    invocations.push_back(ctx.now());
    for (JobRuntime* job : ctx.active_jobs()) place_job_greedy(ctx, *job);
    if (on_schedule) on_schedule(ctx);
  }

  std::vector<SimTime> invocations;
  std::function<void(SchedulerContext&)> on_schedule;
};

void expect_identical_outcomes(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobRecord& ja = a.jobs[i];
    const JobRecord& jb = b.jobs[i];
    EXPECT_EQ(ja.id, jb.id);
    EXPECT_EQ(ja.arrival_seconds, jb.arrival_seconds);
    EXPECT_EQ(ja.first_start_seconds, jb.first_start_seconds) << "job " << ja.id;
    EXPECT_EQ(ja.finish_seconds, jb.finish_seconds) << "job " << ja.id;
    EXPECT_EQ(ja.clones_launched, jb.clones_launched) << "job " << ja.id;
    EXPECT_EQ(ja.speculative_launched, jb.speculative_launched) << "job " << ja.id;
    EXPECT_EQ(ja.tasks_with_clones, jb.tasks_with_clones) << "job " << ja.id;
    EXPECT_EQ(ja.resource_seconds, jb.resource_seconds) << "job " << ja.id;
  }
  EXPECT_EQ(a.total_copies_launched, b.total_copies_launched);
  EXPECT_EQ(a.total_tasks_completed, b.total_tasks_completed);
}

void expect_identical_event_traces(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const SimEventRecord& ea = a.events[i];
    const SimEventRecord& eb = b.events[i];
    EXPECT_EQ(ea.seconds, eb.seconds) << "event " << i;
    EXPECT_EQ(ea.kind, eb.kind) << "event " << i;
    EXPECT_EQ(ea.job, eb.job) << "event " << i;
    EXPECT_EQ(ea.phase, eb.phase) << "event " << i;
    EXPECT_EQ(ea.task, eb.task) << "event " << i;
    EXPECT_EQ(ea.server, eb.server) << "event " << i;
  }
}

std::vector<JobSpec> straggler_workload(std::uint64_t seed, int count = 8) {
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 8, {1, 1}, 20.0, 30.0));
  }
  assign_poisson_arrivals(jobs, 15.0, seed + 100);
  return jobs;
}

// ---- timer semantics -------------------------------------------------------

TEST(ControlPlane, TimerFiresExactlyOnceAtRequestedSlot) {
  // One deterministic task running for 50 slots; a single wakeup requested
  // for slot 7.  The scheduler must be invoked at exactly {0, 7}: arrival,
  // then the timer — the completion slot empties the active set before the
  // scheduling step, and no other slot may be visited with an invocation.
  const Cluster cluster = Cluster::single({1, 1});
  SimConfig config = base_config();
  config.model = ExecutionModel::kWorkBased;
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 50.0, 0.0)};

  WakeupProbe probe;
  probe.on_schedule = [](SchedulerContext& ctx) {
    if (ctx.now() == 0) ctx.request_wakeup(7);
  };
  const SimResult result = simulate(cluster, config, jobs, probe);

  ASSERT_EQ(probe.invocations.size(), 2u);
  EXPECT_EQ(probe.invocations[0], 0);
  EXPECT_EQ(probe.invocations[1], 7);
  EXPECT_EQ(result.stats.timer_wakeups_requested, 1);
  EXPECT_EQ(result.stats.events_timer, 1);
  EXPECT_EQ(result.stats.scheduler_invocations, 2);
}

TEST(ControlPlane, PastAndDuplicateWakeupsClampAndMerge) {
  // Requests for now() and for the past clamp to now() + 1, and duplicate
  // requests for the same slot merge into one timer event.
  const Cluster cluster = Cluster::single({1, 1});
  SimConfig config = base_config();
  config.model = ExecutionModel::kWorkBased;
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 50.0, 0.0)};

  WakeupProbe probe;
  probe.on_schedule = [](SchedulerContext& ctx) {
    if (ctx.now() == 0) {
      ctx.request_wakeup(0);   // in the present -> clamps to slot 1
      ctx.request_wakeup(-3);  // in the past    -> clamps to slot 1, merged
    }
  };
  const SimResult result = simulate(cluster, config, jobs, probe);

  ASSERT_EQ(probe.invocations.size(), 2u);
  EXPECT_EQ(probe.invocations[0], 0);
  EXPECT_EQ(probe.invocations[1], 1);
  EXPECT_EQ(result.stats.timer_wakeups_requested, 2);
  EXPECT_EQ(result.stats.events_timer, 1) << "duplicate wakeups must merge";
}

TEST(ControlPlane, StallDetectionStillTriggersWithTimerPending) {
  // A policy that never places anything but keeps requesting wakeups must
  // not fool stall detection: pending timers alone cannot change state, so
  // the simulator must still diagnose the stall instead of spinning
  // through timer slots forever.
  const Cluster cluster = Cluster::single({4, 4});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 10.0, 0.0)};

  class IdleTimerScheduler final : public Scheduler {
   public:
    [[nodiscard]] std::string name() const override { return "idle-timer"; }
    void schedule(SchedulerContext& ctx) override { ctx.request_wakeup(ctx.now() + 1); }
  };
  IdleTimerScheduler idle;
  EXPECT_THROW(simulate(cluster, base_config(), jobs, idle), std::runtime_error);
}

// ---- paired-seed refactor equivalence --------------------------------------

TEST(ControlPlane, SpeculationIdenticalToEverySlotPolling) {
  // The seed polled Capacity-with-speculation every slot; the refactor
  // wakes it only at events and threshold crossings.  Over several seeds
  // the two must produce bit-identical job records AND identical event
  // traces (every placement, kill and completion at the same instant on
  // the same server).
  const Cluster cluster = Cluster::uniform(8, {4, 8});
  bool any_speculation = false;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::vector<JobSpec> jobs = straggler_workload(seed);
    SimConfig config = base_config(seed);
    config.record_events = true;

    CapacityConfig cc;
    cc.speculation.min_finished_fraction = 0.1;
    cc.speculation.slow_factor = 1.5;
    CapacityScheduler event_driven(cc);
    EverySlotAdapter polled(std::make_unique<CapacityScheduler>(cc));

    const SimResult fast = simulate(cluster, config, jobs, event_driven);
    const SimResult slow = simulate(cluster, config, jobs, polled);
    expect_identical_outcomes(fast, slow);
    expect_identical_event_traces(fast, slow);
    for (const auto& j : fast.jobs) any_speculation |= j.speculative_launched > 0;
  }
  EXPECT_TRUE(any_speculation) << "test must actually exercise the speculation path";
}

TEST(ControlPlane, HopperIdenticalToEverySlotPolling) {
  const Cluster cluster = Cluster::uniform(8, {4, 8});
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const std::vector<JobSpec> jobs = straggler_workload(seed);
    SimConfig config = base_config(seed);
    config.record_events = true;

    HopperScheduler event_driven;
    EverySlotAdapter polled(std::make_unique<HopperScheduler>());
    const SimResult fast = simulate(cluster, config, jobs, event_driven);
    const SimResult slow = simulate(cluster, config, jobs, polled);
    expect_identical_outcomes(fast, slow);
    expect_identical_event_traces(fast, slow);
  }
}

TEST(ControlPlane, SpeculationIdenticalUnderFailures) {
  // Failures inject events (and RNG draws) mid-run; the timer path must
  // still line up bit-for-bit with every-slot polling.
  const Cluster cluster = Cluster::uniform(8, {4, 8});
  const std::vector<JobSpec> jobs = straggler_workload(7);
  SimConfig config = base_config(7);
  config.record_events = true;
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = 400.0;
  config.failures.mean_repair_seconds = 60.0;

  CapacityConfig cc;
  cc.speculation.min_finished_fraction = 0.1;
  cc.speculation.slow_factor = 1.5;
  CapacityScheduler event_driven(cc);
  EverySlotAdapter polled(std::make_unique<CapacityScheduler>(cc));
  const SimResult fast = simulate(cluster, config, jobs, event_driven);
  const SimResult slow = simulate(cluster, config, jobs, polled);
  expect_identical_outcomes(fast, slow);
  expect_identical_event_traces(fast, slow);
  EXPECT_GT(fast.stats.events_server_failure, 0) << "failures must actually occur";
}

TEST(ControlPlane, TimeInvariantPoliciesUnaffectedByExtraWakeups) {
  // Policies whose decisions depend only on runtime state (not now()) must
  // be indifferent to how many slots the simulator visits: the adapter
  // forces every slot, the bare run visits only events.
  const Cluster cluster = Cluster::uniform(8, {4, 8});
  const std::vector<JobSpec> jobs = straggler_workload(3);
  const auto make = [](int which) -> std::unique_ptr<Scheduler> {
    switch (which) {
      case 0: return std::make_unique<DrfScheduler>();
      case 1: return std::make_unique<TetrisScheduler>();
      case 2: return std::make_unique<CarbyneScheduler>();
      case 3:
        return std::make_unique<SimplePriorityScheduler>(
            SimplePriorityConfig{SimplePriorityRule::kSrpt, 1.5, 0});
      default:
        return std::make_unique<SimplePriorityScheduler>(
            SimplePriorityConfig{SimplePriorityRule::kSvf, 1.5, 0});
    }
  };
  for (int which = 0; which < 5; ++which) {
    SimConfig config = base_config(3);
    config.record_events = true;
    auto bare = make(which);
    EverySlotAdapter polled(make(which));
    const SimResult fast = simulate(cluster, config, jobs, *bare);
    const SimResult slow = simulate(cluster, config, jobs, polled);
    expect_identical_outcomes(fast, slow);
    expect_identical_event_traces(fast, slow);
  }
}

// ---- observability and the fast-forward win --------------------------------

TEST(ControlPlane, EventDrivenCutsInvocationsAtLeastFiveFold) {
  // The acceptance bar of the refactor: on a straggler-heavy load the
  // event-driven control plane must invoke Capacity-with-speculation at
  // least 5x less often than every-slot polling while producing the same
  // schedule.  Long tasks on short slots make events sparse — the regime
  // (5 s slots, minutes-long tasks) the deployment benches run in.
  const Cluster cluster = Cluster::uniform(8, {4, 8});
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 4, {1, 1}, 200.0, 300.0));
  }
  assign_poisson_arrivals(jobs, 50.0, 111);
  const SimConfig config = base_config(11);

  CapacityConfig cc;
  cc.speculation.min_finished_fraction = 0.1;
  cc.speculation.slow_factor = 1.5;
  CapacityScheduler event_driven(cc);
  EverySlotAdapter polled(std::make_unique<CapacityScheduler>(cc));
  const SimResult fast = simulate(cluster, config, jobs, event_driven);
  const SimResult slow = simulate(cluster, config, jobs, polled);

  expect_identical_outcomes(fast, slow);
  EXPECT_GE(slow.stats.scheduler_invocations, 5 * fast.stats.scheduler_invocations)
      << "event-driven path must skip the empty slots polling visited";
  EXPECT_GT(fast.stats.slots_fast_forwarded, fast.stats.slots_visited)
      << "most slots should be fast-forwarded, not visited";
}

TEST(ControlPlane, StatsCountersAreConsistent) {
  const Cluster cluster = Cluster::uniform(8, {4, 8});
  const std::vector<JobSpec> jobs = straggler_workload(2);
  CapacityConfig cc;
  cc.speculation.min_finished_fraction = 0.1;
  cc.speculation.slow_factor = 1.5;
  CapacityScheduler scheduler(cc);
  const SimResult result = simulate(cluster, base_config(2), jobs, scheduler);
  const SimStats& st = result.stats;

  EXPECT_GT(st.scheduler_invocations, 0);
  EXPECT_GT(st.slots_visited, 0);
  EXPECT_EQ(st.events_job_arrival, static_cast<long long>(jobs.size()));
  EXPECT_EQ(st.events_work_finish, 0) << "stochastic model run";
  EXPECT_GT(st.events_copy_finish, 0);
  EXPECT_EQ(st.placements_accepted, result.total_copies_launched);
  EXPECT_EQ(st.placement_attempts, st.placements_accepted + st.placements_rejected());
  EXPECT_GT(st.timer_wakeups_requested, 0) << "speculation must schedule wakeups";
  EXPECT_GE(st.wall_clock_seconds, 0.0);

  // The counters surface in the rendered report table.
  const RunSummary summary = summarize(result);
  EXPECT_EQ(summary.stats.scheduler_invocations, st.scheduler_invocations);
  const std::string table = render_control_plane({summary});
  EXPECT_NE(table.find("invocations"), std::string::npos);
  EXPECT_NE(table.find("ff_slots"), std::string::npos);
}

}  // namespace
}  // namespace dollymp
