// The shared placement helpers every policy builds on (sched/scheduler.h).
#include <gtest/gtest.h>

#include "dollymp/sched/scheduler.h"
#include "dollymp/sim/runtime_store.h"

namespace dollymp {
namespace {

TEST(BestFit, PicksLargestAlignment) {
  Cluster cluster;
  cluster.add_server(ServerSpec{{8, 8}, 1.0, 0, "a"});   // free (8,8)
  cluster.add_server(ServerSpec{{16, 16}, 1.0, 0, "b"}); // free (16,16): bigger dot
  EXPECT_EQ(best_fit_server(cluster, {1, 1}), 1);
  // Fill server b so a wins.
  ASSERT_TRUE(cluster.server(1).allocate({15, 15}));
  EXPECT_EQ(best_fit_server(cluster, {1, 1}), 0);
}

TEST(BestFit, ReturnsInvalidWhenNothingFits) {
  Cluster cluster = Cluster::uniform(3, {2, 2});
  EXPECT_EQ(best_fit_server(cluster, {4, 1}), kInvalidServer);
  for (auto& s : cluster.servers()) ASSERT_TRUE(s.allocate({2, 2}));
  EXPECT_EQ(best_fit_server(cluster, {1, 1}), kInvalidServer);
}

TEST(FirstFit, PicksLowestIndexThatFits) {
  Cluster cluster = Cluster::uniform(4, {4, 4});
  ASSERT_TRUE(cluster.server(0).allocate({4, 4}));
  ASSERT_TRUE(cluster.server(1).allocate({3, 3}));
  EXPECT_EQ(first_fit_server(cluster, {2, 2}), 2);
  EXPECT_EQ(first_fit_server(cluster, {1, 1}), 1);
  EXPECT_EQ(first_fit_server(cluster, {5, 5}), kInvalidServer);
}

TEST(LocalityAware, PrefersReplicaThenRackThenBestFit) {
  // Two racks of two servers (uniform() groups 40 per rack, so build by
  // hand).
  Cluster cluster;
  cluster.add_server(ServerSpec{{4, 4}, 1.0, 0, "r0a"});
  cluster.add_server(ServerSpec{{4, 4}, 1.0, 0, "r0b"});
  cluster.add_server(ServerSpec{{4, 4}, 1.0, 1, "r1a"});
  cluster.add_server(ServerSpec{{8, 8}, 1.0, 1, "r1b"});
  const LocalityModel locality({}, cluster);

  TaskRuntime task;
  task.demand = {2, 2};
  task.block.replicas = {0, 2};

  // Replica 0 fits: chosen.
  EXPECT_EQ(locality_aware_server(cluster, locality, task), 0);
  // Fill both replicas: rack-local server of one replica wins over the
  // larger off-replica best fit... server 1 (rack 0) and 3 (rack 1) are
  // both rack-local here, so the tightest-alignment rack-local is picked.
  ASSERT_TRUE(cluster.server(0).allocate({3, 3}));
  ASSERT_TRUE(cluster.server(2).allocate({3, 3}));
  const ServerId rack_local = locality_aware_server(cluster, locality, task);
  EXPECT_EQ(rack_local, 3);  // rack-local to replica 2, biggest free dot
  // Fill every rack-local option: falls back to best fit (none left here
  // but server 1).
  ASSERT_TRUE(cluster.server(3).allocate({7, 7}));
  EXPECT_EQ(locality_aware_server(cluster, locality, task), 1);
}

TEST(JobActiveAllocation, SumsActiveCopiesOnly) {
  JobSpec spec = JobSpec::single_phase(0, 3, {2, 4}, 10.0);
  Cluster cluster = Cluster::uniform(2, {8, 16});
  const LocalityModel locality({}, cluster);
  Rng rng(1);
  RuntimeStore store;
  JobRuntime& job = store.jobs()[store.materialize(spec, 1.0, locality, rng)];
  EXPECT_EQ(job_active_allocation(job), Resources(0, 0));
  EXPECT_EQ(job_active_allocation_scan(job), Resources(0, 0));
  // Fake two active copies on task 0 and one inactive on task 1, keeping
  // the phase's active_copies counter consistent (as the simulator does):
  // job_active_allocation reads the counter, the scan walks the copies.
  job.phases[0].tasks[0].copies.push_back({0, 0, 5, LocalityLevel::kNode, true, false, 0});
  job.phases[0].tasks[0].copies.push_back({1, 0, 5, LocalityLevel::kNode, true, false, 0});
  job.phases[0].tasks[1].copies.push_back({0, 0, 5, LocalityLevel::kNode, false, true, 0});
  job.phases[0].active_copies = 2;
  EXPECT_EQ(job_active_allocation(job), Resources(4, 8));
  EXPECT_EQ(job_active_allocation_scan(job), Resources(4, 8));
}

TEST(NextUnscheduledTask, WalksAndSticks) {
  JobSpec spec = JobSpec::single_phase(0, 3, {1, 1}, 10.0);
  Cluster cluster = Cluster::uniform(1, {8, 8});
  const LocalityModel locality({}, cluster);
  Rng rng(2);
  RuntimeStore store;
  JobRuntime& job = store.jobs()[store.materialize(spec, 1.0, locality, rng)];
  PhaseRuntime& phase = job.phases[0];
  EXPECT_EQ(next_unscheduled_task(phase), &phase.tasks[0]);
  // Simulate scheduling task 0.
  phase.tasks[0].copies.push_back({0, 0, 10, LocalityLevel::kNode, true, false, 0});
  --phase.unscheduled_tasks;
  EXPECT_EQ(next_unscheduled_task(phase), &phase.tasks[1]);
  phase.tasks[1].copies.push_back({0, 0, 10, LocalityLevel::kNode, true, false, 0});
  --phase.unscheduled_tasks;
  phase.tasks[2].copies.push_back({0, 0, 10, LocalityLevel::kNode, true, false, 0});
  --phase.unscheduled_tasks;
  EXPECT_EQ(next_unscheduled_task(phase), nullptr);
}

}  // namespace
}  // namespace dollymp
