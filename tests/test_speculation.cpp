#include "dollymp/sim/speculation.h"

#include <gtest/gtest.h>

#include "dollymp/sched/capacity.h"
#include "dollymp/sim/simulator.h"

namespace dollymp {
namespace {

SimConfig base_config(std::uint64_t seed = 1) {
  SimConfig config;
  config.slot_seconds = 1.0;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  return config;
}

TEST(Speculation, BacksUpOverrunningTasks) {
  // A phase with huge variance: some tasks straggle far past theta, and the
  // Capacity scheduler's speculation pass must launch backups for them.
  const Cluster cluster = Cluster::uniform(8, {4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_phase(0, 16, {1, 1}, 20.0, 30.0)};

  CapacityConfig with;
  with.speculation.enabled = true;
  with.speculation.min_finished_fraction = 0.1;
  with.speculation.slow_factor = 1.5;  // pin: the test exercises the mechanism
  CapacityScheduler scheduler(with);
  const SimResult result = simulate(cluster, base_config(), jobs, scheduler);
  EXPECT_GT(result.jobs[0].speculative_launched, 0)
      << "high-variance phase must trigger backups";
  EXPECT_EQ(result.jobs[0].clones_launched, 0) << "speculation is not cloning";
}

TEST(Speculation, DisabledLaunchesNothing) {
  const Cluster cluster = Cluster::uniform(8, {4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_phase(0, 16, {1, 1}, 20.0, 30.0)};
  CapacityConfig off;
  off.speculation.enabled = false;
  CapacityScheduler scheduler(off);
  const SimResult result = simulate(cluster, base_config(), jobs, scheduler);
  EXPECT_EQ(result.jobs[0].speculative_launched, 0);
}

TEST(Speculation, NoBackupsForDeterministicTasks) {
  // sigma = 0: every task finishes exactly at theta, nobody overruns the
  // slow_factor threshold before completing.
  const Cluster cluster = Cluster::uniform(8, {4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_phase(0, 16, {1, 1}, 20.0, 0.0)};
  CapacityScheduler scheduler;
  const SimResult result = simulate(cluster, base_config(), jobs, scheduler);
  EXPECT_EQ(result.jobs[0].speculative_launched, 0);
}

TEST(Speculation, ReducesTailUnderStragglers) {
  // Across seeds, speculation should lower the mean completion of a
  // straggler-heavy phase versus no speculation.
  const Cluster cluster = Cluster::uniform(16, {4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_phase(0, 24, {1, 1}, 20.0, 30.0)};
  double with_total = 0.0;
  double without_total = 0.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    CapacityConfig on;
    on.speculation.min_finished_fraction = 0.1;
    on.speculation.slow_factor = 1.5;
    CapacityScheduler with(on);
    CapacityConfig off;
    off.speculation.enabled = false;
    CapacityScheduler without(off);
    with_total += simulate(cluster, base_config(seed), jobs, with).jobs[0].finish_seconds;
    without_total +=
        simulate(cluster, base_config(seed), jobs, without).jobs[0].finish_seconds;
  }
  EXPECT_LT(with_total, without_total);
}

TEST(Speculation, RespectsMaxBackupsPerTask) {
  const Cluster cluster = Cluster::uniform(16, {4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_phase(0, 8, {1, 1}, 20.0, 40.0)};
  SimConfig config = base_config();
  config.record_tasks = true;
  CapacityConfig cc;
  cc.speculation.min_finished_fraction = 0.0;
  cc.speculation.max_backups_per_task = 1;
  CapacityScheduler scheduler(cc);
  const SimResult result = simulate(cluster, config, jobs, scheduler);
  for (const auto& t : result.tasks) {
    EXPECT_LE(t.copies, 2) << "one backup max means at most 2 concurrent copies";
  }
}

}  // namespace
}  // namespace dollymp
