// Resilience policy layer: retry backoff, server quarantine with probation,
// graceful clone degradation — unit tests against a minimal fake context
// plus end-to-end runs under fault injection, including the randomized
// index-vs-linear equivalence fuzz while quarantine churns candidacy.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/resilience.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

namespace dollymp {
namespace {

/// Minimal SchedulerContext for driving ResiliencePolicy directly: time is
/// settable, quarantine/wakeup/retry calls are recorded, nothing places.
class FakeResilienceContext final : public SchedulerContext {
 public:
  explicit FakeResilienceContext(Cluster cluster) : cluster_(std::move(cluster)) {
    quarantined_.assign(cluster_.size(), false);
  }

  SimTime now_value = 0;

  [[nodiscard]] SimTime now() const override { return now_value; }
  [[nodiscard]] double slot_seconds() const override { return 1.0; }
  [[nodiscard]] const Cluster& cluster() const override { return cluster_; }
  [[nodiscard]] const SimConfig& config() const override { return config_; }
  [[nodiscard]] const std::vector<JobRuntime*>& active_jobs() override { return active_; }
  bool place_copy(JobRuntime&, PhaseRuntime&, TaskRuntime&, ServerId) override {
    return false;
  }
  bool place_speculative_copy(JobRuntime&, PhaseRuntime&, TaskRuntime&,
                              ServerId) override {
    return false;
  }
  void request_wakeup(SimTime slot) override { last_wakeup = slot; }
  [[nodiscard]] Rng& policy_rng() override { return rng_; }

  void set_server_quarantined(ServerId server, bool quarantined) override {
    quarantined_[static_cast<std::size_t>(server)] = quarantined;
  }
  void defer_retry(SimTime release_slot) override {
    deferred = true;
    last_wakeup = release_slot;
  }
  void note_retry_issued(long long backoff_slots) override {
    ++retries;
    last_backoff = backoff_slots;
  }

  [[nodiscard]] bool quarantined(ServerId server) const {
    return quarantined_[static_cast<std::size_t>(server)];
  }

  SimTime last_wakeup = kNever;
  long long last_backoff = -1;
  int retries = 0;
  bool deferred = false;

 private:
  Cluster cluster_;
  SimConfig config_;
  std::vector<JobRuntime*> active_;
  std::vector<bool> quarantined_;
  Rng rng_{1};
};

ResilienceConfig enabled_config() {
  ResilienceConfig config;
  config.enabled = true;
  return config;
}

TaskRuntime orphan_task() {
  TaskRuntime task;
  task.ref = TaskRef{0, 0, 0};
  return task;  // no copies, not finished: needs_placement() is true
}

// ---- retry backoff ----------------------------------------------------------

TEST(Resilience, BackoffDoublesUpToBudgetThenSaturates) {
  FakeResilienceContext ctx(Cluster::uniform(8, {8, 16}));
  ResilienceConfig config = enabled_config();
  config.quarantine = false;
  ResiliencePolicy policy(config, ctx.cluster().size());
  const TaskRuntime task = orphan_task();

  // initial=2, budget=4: holds go 2,4,8,16,32 and then stay saturated.
  const long long expected[] = {2, 4, 8, 16, 32, 32, 32};
  for (const long long hold : expected) {
    policy.on_copy_fault(ctx, task, 0);
    EXPECT_EQ(ctx.last_backoff, hold);
  }
  EXPECT_EQ(ctx.retries, 7);
}

TEST(Resilience, ShouldDeferUntilReleaseSlot) {
  FakeResilienceContext ctx(Cluster::uniform(4, {8, 16}));
  ResiliencePolicy policy(enabled_config(), ctx.cluster().size());
  const TaskRuntime task = orphan_task();

  ctx.now_value = 10;
  policy.on_copy_fault(ctx, task, 1);  // hold = 2 slots, release = 12
  EXPECT_TRUE(policy.should_defer(task, 10));
  EXPECT_TRUE(policy.should_defer(task, 11));
  EXPECT_FALSE(policy.should_defer(task, 12));

  // finish_invocation surfaces the earliest pending release as a deferral.
  ASSERT_TRUE(policy.should_defer(task, 10));
  policy.finish_invocation(ctx);
  EXPECT_TRUE(ctx.deferred);
  EXPECT_EQ(ctx.last_wakeup, 12);
}

TEST(Resilience, RunningTaskGetsNoBackoff) {
  FakeResilienceContext ctx(Cluster::uniform(4, {8, 16}));
  ResiliencePolicy policy(enabled_config(), ctx.cluster().size());
  static CopySlab slab;  // backing storage for the hand-built copy list
  TaskRuntime task = orphan_task();
  task.copies.bind(&slab);
  CopyRuntime copy;
  copy.active = true;
  task.copies.push_back(copy);  // a surviving copy: not orphaned
  policy.on_copy_fault(ctx, task, 0);
  EXPECT_EQ(ctx.retries, 0);
  EXPECT_FALSE(policy.should_defer(task, 0));
}

// ---- quarantine -------------------------------------------------------------

TEST(Resilience, QuarantinesAtStrikeThreshold) {
  FakeResilienceContext ctx(Cluster::uniform(10, {8, 16}));
  ResiliencePolicy policy(enabled_config(), ctx.cluster().size());
  const TaskRuntime task = orphan_task();

  policy.on_copy_fault(ctx, task, 3);
  policy.on_copy_fault(ctx, task, 3);
  EXPECT_FALSE(policy.is_quarantined(3));
  policy.on_copy_fault(ctx, task, 3);  // third strike crosses flap_threshold=3
  EXPECT_TRUE(policy.is_quarantined(3));
  EXPECT_TRUE(ctx.quarantined(3));
  EXPECT_EQ(policy.quarantined_count(), 1);
}

TEST(Resilience, FleetFractionCapLimitsQuarantine) {
  FakeResilienceContext ctx(Cluster::uniform(5, {8, 16}));
  ResilienceConfig config = enabled_config();
  config.max_quarantined_fraction = 0.2;  // 1 of 5 servers at most
  ResiliencePolicy policy(config, ctx.cluster().size());
  const TaskRuntime task = orphan_task();

  for (int i = 0; i < 3; ++i) policy.on_copy_fault(ctx, task, 0);
  for (int i = 0; i < 3; ++i) policy.on_copy_fault(ctx, task, 1);
  EXPECT_TRUE(policy.is_quarantined(0));
  EXPECT_FALSE(policy.is_quarantined(1)) << "cap must keep server 1 in service";
  EXPECT_EQ(policy.quarantined_count(), 1);
}

TEST(Resilience, ProbationReleasesWithHalvedStrikes) {
  FakeResilienceContext ctx(Cluster::uniform(10, {8, 16}));
  ResilienceConfig config = enabled_config();
  config.strike_half_life_slots = 1e12;  // freeze decay for the arithmetic
  ResiliencePolicy policy(config, ctx.cluster().size());
  const TaskRuntime task = orphan_task();

  for (int i = 0; i < 3; ++i) policy.on_copy_fault(ctx, task, 2);
  ASSERT_TRUE(policy.is_quarantined(2));
  // The wakeup registered at quarantine time targets the release slot.
  EXPECT_EQ(ctx.last_wakeup, config.quarantine_slots);

  // Before the term ends nothing is released.
  ctx.now_value = config.quarantine_slots - 1;
  policy.begin_invocation(ctx);
  EXPECT_TRUE(policy.is_quarantined(2));

  ctx.now_value = config.quarantine_slots;
  policy.begin_invocation(ctx);
  EXPECT_FALSE(policy.is_quarantined(2));
  EXPECT_FALSE(ctx.quarantined(2));
  EXPECT_EQ(policy.quarantined_count(), 0);
  EXPECT_NEAR(policy.strikes(2), 1.5, 1e-9);  // probation: half of 3

  // A prompt re-offense re-quarantines after fewer new strikes.
  policy.on_copy_fault(ctx, task, 2);
  policy.on_copy_fault(ctx, task, 2);
  EXPECT_TRUE(policy.is_quarantined(2));
}

TEST(Resilience, StrikesDecayWithHalfLife) {
  FakeResilienceContext ctx(Cluster::uniform(4, {8, 16}));
  ResilienceConfig config = enabled_config();
  config.quarantine = false;
  config.strike_half_life_slots = 100.0;
  ResiliencePolicy policy(config, ctx.cluster().size());
  const TaskRuntime task = orphan_task();

  policy.on_copy_fault(ctx, task, 0);
  EXPECT_NEAR(policy.strikes(0), 1.0, 1e-9);
  ctx.now_value = 100;  // one half-life later
  policy.on_copy_fault(ctx, task, 0);
  EXPECT_NEAR(policy.strikes(0), 1.5, 1e-9);
}

// ---- graceful clone degradation ---------------------------------------------

TEST(Resilience, CloneBudgetShrinksBelowWatermark) {
  FakeResilienceContext ctx(Cluster::uniform(10, {8, 16}));
  ResiliencePolicy policy(enabled_config(), ctx.cluster().size());

  EXPECT_EQ(policy.degraded_clone_budget(ctx, 2), 2) << "healthy fleet keeps budget";
  // 4 of 10 down: live fraction 0.6 < watermark 0.75.
  for (ServerId s = 0; s < 4; ++s) policy.on_server_failed(ctx, s);
  EXPECT_EQ(policy.down_count(), 4);
  EXPECT_EQ(policy.degraded_clone_budget(ctx, 2), 1);  // floor(2 * 0.6/0.75)
  // Everything down: no clones at all.
  for (ServerId s = 4; s < 10; ++s) policy.on_server_failed(ctx, s);
  EXPECT_EQ(policy.degraded_clone_budget(ctx, 2), 0);
  // Repairs restore the budget.
  for (ServerId s = 0; s < 10; ++s) policy.on_server_repaired(ctx, s);
  EXPECT_EQ(policy.degraded_clone_budget(ctx, 2), 2);
}

// ---- end-to-end under fault injection ---------------------------------------

std::vector<JobSpec> workload(int count) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < count; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 5, {2, 4}, 40.0, 20.0, i * 15.0));
  }
  return jobs;
}

SimConfig faulty_config(std::uint64_t seed) {
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  config.faults.copy.enabled = true;
  config.faults.copy.inter_fault.mean_seconds = 45.0;
  return config;
}

DollyMPConfig resilient_config() {
  DollyMPConfig config;
  config.resilience.enabled = true;
  return config;
}

TEST(ResilienceEndToEnd, BackoffStatsSurfaceInSimStats) {
  const Cluster cluster = Cluster::uniform(8, {8, 16});
  DollyMPScheduler scheduler(resilient_config());
  const SimResult result = simulate(cluster, faulty_config(1), workload(20), scheduler);
  ASSERT_EQ(result.jobs.size(), 20u);
  EXPECT_GT(result.stats.copies_killed_by_faults, 0);
  EXPECT_GT(result.stats.retries_issued, 0);
  EXPECT_GT(result.stats.backoff_slots_waited, 0);
  EXPECT_EQ(result.total_copies_launched,
            result.stats.copies_finished + result.stats.copies_killed);
}

TEST(ResilienceEndToEnd, QuarantineStatsSurfaceInSimStats) {
  const Cluster cluster = Cluster::uniform(8, {8, 16});
  SimConfig config = faulty_config(2);
  config.faults.copy.inter_fault.mean_seconds = 20.0;  // heavy fault pressure
  DollyMPConfig sched_config = resilient_config();
  sched_config.resilience.flap_threshold = 2.0;
  // Short terms so quarantines both start and expire within the run.
  sched_config.resilience.quarantine_slots = 8;
  DollyMPScheduler scheduler(sched_config);
  const SimResult result = simulate(cluster, config, workload(30), scheduler);
  ASSERT_EQ(result.jobs.size(), 30u);
  EXPECT_GT(result.stats.servers_quarantined, 0);
  EXPECT_GT(result.stats.quarantine_exits, 0);
  EXPECT_EQ(result.stats.leaked_active_copies, 0);
}

TEST(ResilienceEndToEnd, DeterministicGivenSeed) {
  const Cluster cluster = Cluster::uniform(8, {8, 16});
  const auto jobs = workload(15);
  DollyMPScheduler s1(resilient_config());
  DollyMPScheduler s2(resilient_config());
  const SimResult a = simulate(cluster, faulty_config(3), jobs, s1);
  const SimResult b = simulate(cluster, faulty_config(3), jobs, s2);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_seconds, b.jobs[i].finish_seconds);
  }
  EXPECT_EQ(a.stats.retries_issued, b.stats.retries_issued);
  EXPECT_EQ(a.stats.servers_quarantined, b.stats.servers_quarantined);
}

// ---- index-vs-linear fuzz under quarantine churn ----------------------------

void expect_identical_outcomes(const SimResult& a, const SimResult& b,
                               std::uint64_t seed) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish_seconds, b.jobs[i].finish_seconds)
        << "seed " << seed << " job " << a.jobs[i].id;
    EXPECT_EQ(a.jobs[i].clones_launched, b.jobs[i].clones_launched)
        << "seed " << seed << " job " << a.jobs[i].id;
  }
  EXPECT_EQ(a.total_copies_launched, b.total_copies_launched) << "seed " << seed;
  ASSERT_EQ(a.events.size(), b.events.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].seconds, b.events[i].seconds) << "seed " << seed << " ev " << i;
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << "seed " << seed << " ev " << i;
    EXPECT_EQ(a.events[i].server, b.events[i].server) << "seed " << seed << " ev " << i;
  }
}

TEST(ResilienceFuzz, IndexMatchesLinearWhileQuarantineChurns) {
  // Randomized paired-seed sweep: random workload shape + crash and copy
  // faults + an aggressive quarantine policy, indexed vs linear scan.  The
  // index's candidacy set churns on every quarantine enter/exit; any
  // missed update shows up as a divergent placement.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng fuzz(seed * 7919 + 13);
    const int job_count = 8 + static_cast<int>(fuzz.below(10));
    const double gap = 5.0 + static_cast<double>(fuzz.below(12));

    TraceModelConfig model_config;
    model_config.max_tasks_per_phase = 20 + static_cast<int>(fuzz.below(20));
    TraceModel model(model_config, seed);
    auto jobs = model.sample_jobs(job_count);
    assign_poisson_arrivals(jobs, gap, seed + 1);

    SimConfig config;
    config.slot_seconds = 5.0;
    config.seed = seed;
    config.background.enabled = false;
    config.locality.enabled = false;
    config.record_events = true;
    config.failures.enabled = true;
    config.failures.mean_time_to_failure_seconds =
        400.0 + static_cast<double>(fuzz.below(400));
    config.failures.mean_repair_seconds = 60.0 + static_cast<double>(fuzz.below(60));
    config.faults.copy.enabled = true;
    config.faults.copy.inter_fault.mean_seconds =
        30.0 + static_cast<double>(fuzz.below(60));

    DollyMPConfig sched_config = resilient_config();
    sched_config.resilience.flap_threshold = 2.0;
    sched_config.resilience.quarantine_slots = 30 + static_cast<SimTime>(fuzz.below(60));
    sched_config.resilience.max_quarantined_fraction = 0.3;

    const Cluster cluster = Cluster::google_like(20 + fuzz.below(30));

    SimConfig indexed = config;
    indexed.use_placement_index = true;
    SimConfig linear = config;
    linear.use_placement_index = false;

    DollyMPScheduler s1(sched_config);
    DollyMPScheduler s2(sched_config);
    const SimResult fast = simulate(cluster, indexed, jobs, s1);
    const SimResult slow = simulate(cluster, linear, jobs, s2);
    expect_identical_outcomes(fast, slow, seed);
    EXPECT_EQ(slow.stats.index_queries, 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dollymp
