// Behavioural tests for the scheduling policies themselves.
#include <gtest/gtest.h>

#include "dollymp/sched/capacity.h"
#include "dollymp/sched/carbyne.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/simple_priority.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/sim/simulator.h"

namespace dollymp {
namespace {

SimConfig clean_config(double slot = 1.0, std::uint64_t seed = 1) {
  SimConfig config;
  config.slot_seconds = slot;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  return config;
}

TEST(SchedulerNames, AreStable) {
  EXPECT_EQ(CapacityScheduler().name(), "capacity");
  EXPECT_EQ(DrfScheduler().name(), "drf");
  EXPECT_EQ(TetrisScheduler().name(), "tetris");
  EXPECT_EQ(CarbyneScheduler().name(), "carbyne");
  EXPECT_EQ(DollyMPScheduler(DollyMPConfig{0}).name(), "dollymp^0");
  EXPECT_EQ(DollyMPScheduler(DollyMPConfig{2}).name(), "dollymp^2");
  EXPECT_EQ(SimplePriorityScheduler({SimplePriorityRule::kSrpt, 1.5, 0}).name(), "srpt");
  EXPECT_EQ(SimplePriorityScheduler({SimplePriorityRule::kSvf, 1.5, 1}).name(), "svf^1");
}

TEST(SchedulerConfigs, RejectNegativeCloneBudgets) {
  EXPECT_THROW(DollyMPScheduler(DollyMPConfig{-1}), std::invalid_argument);
  EXPECT_THROW(SimplePriorityScheduler({SimplePriorityRule::kSrpt, 1.5, -1}),
               std::invalid_argument);
}

// With one server and two deterministic single-task jobs of very different
// lengths arriving together, size-aware policies run the short job first;
// FIFO (capacity) runs them in arrival order.
TEST(Policies, SizeAwareOrdering) {
  const Cluster cluster = Cluster::single({1, 1});
  const std::vector<JobSpec> jobs{
      JobSpec::single_task(0, {1, 1}, 100.0),  // long, arrives first
      JobSpec::single_task(1, {1, 1}, 10.0),   // short
  };

  CapacityConfig cc;
  cc.speculation.enabled = false;
  CapacityScheduler capacity(cc);
  const SimResult fifo = simulate(cluster, clean_config(), jobs, capacity);
  EXPECT_DOUBLE_EQ(fifo.job(0).finish_seconds, 100.0);
  EXPECT_DOUBLE_EQ(fifo.job(1).finish_seconds, 110.0);
  EXPECT_DOUBLE_EQ(fifo.total_flowtime(), 210.0);

  for (auto* scheduler_name : {"srpt", "svf", "dollymp"}) {
    std::unique_ptr<Scheduler> s;
    if (std::string(scheduler_name) == "srpt") {
      s = std::make_unique<SimplePriorityScheduler>(
          SimplePriorityConfig{SimplePriorityRule::kSrpt, 1.5, 0});
    } else if (std::string(scheduler_name) == "svf") {
      s = std::make_unique<SimplePriorityScheduler>(
          SimplePriorityConfig{SimplePriorityRule::kSvf, 1.5, 0});
    } else {
      s = std::make_unique<DollyMPScheduler>(DollyMPConfig{0});
    }
    const SimResult result = simulate(cluster, clean_config(), jobs, *s);
    EXPECT_DOUBLE_EQ(result.job(1).finish_seconds, 10.0) << scheduler_name;
    EXPECT_DOUBLE_EQ(result.total_flowtime(), 120.0) << scheduler_name;
  }
}

// DRF equalizes dominant shares between two contending jobs.
TEST(Drf, EqualizesDominantShares) {
  // 10 cores, 10 GB.  Job A tasks are CPU-heavy (2,0.5); job B memory-heavy
  // (0.5,2).  DRF should let both run ~equal dominant shares rather than
  // letting one monopolize.
  const Cluster cluster = Cluster::single({10, 10});
  const std::vector<JobSpec> jobs{
      JobSpec::single_phase(0, 20, {2.0, 0.5}, 50.0),
      JobSpec::single_phase(1, 20, {0.5, 2.0}, 50.0),
  };
  SimConfig config = clean_config();
  config.record_tasks = true;
  DrfScheduler drf;
  const SimResult result = simulate(cluster, config, jobs, drf);
  // In the first wave both jobs must have tasks running concurrently.
  int a_first_wave = 0;
  int b_first_wave = 0;
  for (const auto& t : result.tasks) {
    if (t.first_start_seconds == 0.0) {
      (t.ref.job == 0 ? a_first_wave : b_first_wave)++;
    }
  }
  EXPECT_GT(a_first_wave, 0);
  EXPECT_GT(b_first_wave, 0);
  // Dominant shares of the first wave are within one task of each other:
  // a uses 2c per task (share .2), b uses 2GB per task (share .2).
  EXPECT_NEAR(a_first_wave * 0.2, b_first_wave * 0.2, 0.2 + 1e-9);
}

// Tetris prefers the placement that packs complementary demands.
TEST(Tetris, PacksComplementaryDemands) {
  // Server (10,10); a CPU-heavy phase and a memory-heavy phase can overlap
  // perfectly.  Tetris should co-locate them and finish both in one wave.
  const Cluster cluster = Cluster::single({10, 10});
  const std::vector<JobSpec> jobs{
      JobSpec::single_phase(0, 5, {1.8, 0.2}, 10.0),
      JobSpec::single_phase(1, 5, {0.2, 1.8}, 10.0),
  };
  TetrisScheduler tetris;
  const SimResult result = simulate(cluster, clean_config(), jobs, tetris);
  EXPECT_DOUBLE_EQ(result.makespan_seconds, 10.0)
      << "complementary phases must run in a single wave";
}

TEST(Tetris, AlignmentPrefersBigAlignedJobFirst) {
  // The Fig. 2 situation: a full-server job has the highest alignment score
  // and goes first under Tetris even though two small jobs exist.
  const Cluster cluster = Cluster::single({1, 1});
  const std::vector<JobSpec> jobs{
      JobSpec::single_task(0, {1.0, 1.0}, 20.0),
      JobSpec::single_task(1, {0.25, 0.25}, 8.0),
      JobSpec::single_task(2, {0.25, 0.25}, 8.0),
  };
  SimConfig config = clean_config();
  config.record_tasks = true;
  TetrisScheduler tetris;
  const SimResult result = simulate(cluster, config, jobs, tetris);
  EXPECT_DOUBLE_EQ(result.job(0).first_start_seconds, 0.0);
}

// DollyMP clone budget zero vs two on a straggler-heavy workload: cloning
// must reduce mean flowtime (paired seeds).
TEST(DollyMP, CloningHelpsUnderStragglers) {
  const Cluster cluster = Cluster::uniform(6, {8, 16});
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 4, {1, 2}, 30.0, 35.0, i * 10.0));
  }
  double flow0 = 0.0;
  double flow2 = 0.0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    DollyMPScheduler d0{DollyMPConfig{0}};
    DollyMPScheduler d2{DollyMPConfig{2}};
    flow0 += simulate(cluster, clean_config(1.0, seed), jobs, d0).total_flowtime();
    flow2 += simulate(cluster, clean_config(1.0, seed), jobs, d2).total_flowtime();
  }
  EXPECT_LT(flow2, flow0);
}

TEST(DollyMP, NoClonesWhenBudgetZero) {
  const Cluster cluster = Cluster::paper30();
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 6, {1, 2}, 30.0, 20.0, 0.0));
  }
  DollyMPScheduler d0{DollyMPConfig{0}};
  const SimResult result = simulate(cluster, clean_config(5.0), jobs, d0);
  for (const auto& j : result.jobs) {
    EXPECT_EQ(j.clones_launched, 0);
  }
}

TEST(DollyMP, PrioritizesSmallJobsOverBigOnes) {
  // Single unit server, transient batch: many small jobs and one large job.
  // DollyMP (knapsack classes) must finish all small jobs before the large
  // one starts.
  const Cluster cluster = Cluster::single({1, 1});
  std::vector<JobSpec> jobs;
  jobs.push_back(JobSpec::single_task(0, {1.0, 1.0}, 64.0));
  for (int i = 1; i <= 4; ++i) {
    jobs.push_back(JobSpec::single_task(i, {0.5, 0.5}, 4.0));
  }
  SimConfig config = clean_config();
  config.record_tasks = true;
  DollyMPScheduler dollymp{DollyMPConfig{0}};
  const SimResult result = simulate(cluster, config, jobs, dollymp);
  double small_max_finish = 0.0;
  for (int i = 1; i <= 4; ++i) {
    small_max_finish = std::max(small_max_finish, result.job(i).finish_seconds);
  }
  EXPECT_LE(small_max_finish, result.job(0).first_start_seconds + 1e-9);
}

TEST(DollyMP, RecomputeOnlyOnArrivalByDefault) {
  DollyMPScheduler scheduler;
  EXPECT_FALSE(scheduler.config().recompute_on_completion);
  EXPECT_EQ(scheduler.config().clone_budget, 2);
  EXPECT_DOUBLE_EQ(scheduler.config().sigma_factor, 1.5);
  EXPECT_DOUBLE_EQ(scheduler.config().delta, 0.3);
}

// Carbyne sits between DRF and a pure packer: it must complete everything
// and not be catastrophically worse than DRF on a loaded cluster.
TEST(Carbyne, LeftoverRedistributionBeatsPlainDrfOnSkewedSizes) {
  const Cluster cluster = Cluster::uniform(4, {8, 16});
  std::vector<JobSpec> jobs;
  // Many short jobs + two long ones, batch arrival.
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 2, {2, 4}, 10.0));
  }
  jobs.push_back(JobSpec::single_phase(100, 8, {2, 4}, 80.0));
  jobs.push_back(JobSpec::single_phase(101, 8, {2, 4}, 80.0));

  DrfScheduler drf;
  CarbyneScheduler carbyne;
  const SimResult drf_result = simulate(cluster, clean_config(), jobs, drf);
  const SimResult carbyne_result = simulate(cluster, clean_config(), jobs, carbyne);
  EXPECT_LE(carbyne_result.total_flowtime(), drf_result.total_flowtime() * 1.05);
}

// SRPT with identical demands is optimal for total flowtime on one server;
// verify against the known optimal order.
TEST(Srpt, MatchesOptimalOnUniformDemands) {
  const Cluster cluster = Cluster::single({1, 1});
  const std::vector<JobSpec> jobs{
      JobSpec::single_task(0, {1, 1}, 30.0),
      JobSpec::single_task(1, {1, 1}, 10.0),
      JobSpec::single_task(2, {1, 1}, 20.0),
  };
  SimplePriorityScheduler srpt({SimplePriorityRule::kSrpt, 1.5, 0});
  const SimResult result = simulate(cluster, clean_config(), jobs, srpt);
  // Optimal: 10 + 30 + 60 = 100.
  EXPECT_DOUBLE_EQ(result.total_flowtime(), 100.0);
}

// SVF accounts for demand: a short-but-wide job can rank after a
// longer-but-narrow one.
TEST(Svf, OrdersByVolumeNotJustTime) {
  const Cluster cluster = Cluster::single({1, 1});
  // Job 0: theta 10, demand 1.0 -> volume 10.  Job 1: theta 16, demand 0.25
  // -> volume 4.  SVF runs job 1 first despite it being longer.
  const std::vector<JobSpec> jobs{
      JobSpec::single_task(0, {1.0, 1.0}, 10.0),
      JobSpec::single_task(1, {0.25, 0.25}, 16.0),
  };
  SimConfig config = clean_config();
  config.record_tasks = true;
  SimplePriorityScheduler svf({SimplePriorityRule::kSvf, 1.5, 0});
  const SimResult result = simulate(cluster, config, jobs, svf);
  EXPECT_DOUBLE_EQ(result.job(1).first_start_seconds, 0.0);
}

// Every policy is work-conserving on a trivially placeable workload: an
// idle cluster plus pending runnable tasks is never left idle.
TEST(Policies, WorkConservingOnIdleCluster) {
  const Cluster cluster = Cluster::uniform(2, {4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 10.0, 0.0, 50.0)};
  std::vector<std::unique_ptr<Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<CapacityScheduler>());
  schedulers.push_back(std::make_unique<DrfScheduler>());
  schedulers.push_back(std::make_unique<TetrisScheduler>());
  schedulers.push_back(std::make_unique<CarbyneScheduler>());
  schedulers.push_back(std::make_unique<DollyMPScheduler>());
  for (auto& s : schedulers) {
    const SimResult result = simulate(cluster, clean_config(), jobs, *s);
    EXPECT_DOUBLE_EQ(result.job(0).first_start_seconds, 50.0) << s->name();
  }
}

}  // namespace
}  // namespace dollymp
