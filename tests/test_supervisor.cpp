// Crash-safe supervised recovery (DESIGN.md §4.9): a SIGKILL at any point
// of the run must not change a single byte of the decision stream.  The
// kill-at matrix below reruns the same workload with crashes injected
// mid-stride across policy × faults × threads and demands the recovered
// continuation's stream hash equal the uninterrupted run's — plus the
// sharp-edge paths: corrupted-latest fallback, quarantined-resume refusal,
// and the restart budget.
#include "dollymp/service/supervisor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/state_io.h"
#include "dollymp/service/session.h"

#if !defined(_WIN32)

namespace dollymp {
namespace {

constexpr SimTime kHorizon = 768;
constexpr SimTime kStride = 256;

/// A moderately loaded service config with the overload layer ON, so the
/// recovery proof covers the admission gate, governor and SLO window state
/// riding in the snapshots — not just the simulator core.
ServiceConfig supervised_config(const std::string& policy, bool faults, int threads) {
  ServiceConfig config;
  config.policy = policy;
  config.sim.seed = 5;
  config.sim.threads = threads;
  config.pump_slots = 64;
  config.arrivals.rate_per_second = 0.1;
  config.arrivals.mean_input_gb = 1.5;
  config.arrivals.seed = 17;
  if (faults) {
    config.sim.failures.enabled = true;
    config.sim.failures.mean_time_to_failure_seconds = 900.0;
    config.sim.failures.mean_repair_seconds = 120.0;
  }
  config.overload.admission_enabled = true;
  config.overload.high_watermark = 3.0;
  config.overload.low_watermark = 1.5;
  config.overload.governor_enabled = true;
  config.overload.slo_target_p99_seconds = 600.0;
  config.overload.slo_window_size = 128;
  config.overload.slo_min_samples = 32;
  return config;
}

SupervisorOptions supervised_options(const std::string& base) {
  SupervisorOptions options;
  options.snapshot_base = base;
  options.horizon_slots = kHorizon;
  options.checkpoint_stride_slots = kStride;
  options.watchdog_seconds = 60.0;  // generous: tests assert crashes, not hangs
  return options;
}

void scrub_rotation(const std::string& base) {
  for (const char* suffix : {".latest", ".prev", ".progress", ".staging"}) {
    std::remove((base + suffix).c_str());
  }
  for (const char* generation : {".latest", ".prev"}) {
    for (int n = 0; n < 8; ++n) {
      std::remove((base + generation + ".quarantined." + std::to_string(n)).c_str());
    }
  }
}

std::string temp_base(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(Supervisor, KillAtAnyPointRecoversBitIdentical) {
  // Kill points are deliberately mid-stride (not multiples of 256): the
  // first child dies before its first snapshot, the later ones lose real
  // work past their last stride boundary.
  const std::vector<SimTime> kills = {130, 500, 650};
  for (const std::string policy : {"dollymp2", "drf", "tetris"}) {
    for (const bool faults : {false, true}) {
      for (const int threads : {1, 8}) {
        const std::string label =
            policy + (faults ? "+faults" : "") + "@t" + std::to_string(threads);
        const ServiceConfig config = supervised_config(policy, faults, threads);
        const std::string base = temp_base("sup_matrix");
        scrub_rotation(base);

        const SupervisorResult clean =
            run_supervised(Cluster::paper30(), config, supervised_options(base));
        EXPECT_EQ(clean.final_clock, kHorizon) << label;
        EXPECT_EQ(clean.restarts, 0) << label;

        scrub_rotation(base);
        SupervisorOptions crashy = supervised_options(base);
        crashy.kill_at_slots = kills;
        const SupervisorResult recovered =
            run_supervised(Cluster::paper30(), config, crashy);
        EXPECT_EQ(recovered.restarts, static_cast<int>(kills.size())) << label;
        EXPECT_EQ(recovered.final_clock, clean.final_clock) << label;
        EXPECT_EQ(recovered.stream_hash, clean.stream_hash) << label;
        EXPECT_EQ(recovered.records_written, clean.records_written) << label;
        EXPECT_EQ(recovered.jobs_ingested, clean.jobs_ingested) << label;
        EXPECT_EQ(recovered.jobs_completed, clean.jobs_completed) << label;
        EXPECT_EQ(recovered.arrivals_shed, clean.arrivals_shed) << label;
        EXPECT_EQ(recovered.snapshots_quarantined, 0) << label;
        scrub_rotation(base);
      }
    }
  }
}

TEST(Supervisor, FallsBackToPreviousGenerationWhenLatestIsCorrupt) {
  const ServiceConfig config = supervised_config("dollymp2", false, 1);
  const std::string base = temp_base("sup_fallback");
  scrub_rotation(base);

  // Baseline: uninterrupted supervised run.
  const SupervisorResult clean =
      run_supervised(Cluster::paper30(), config, supervised_options(base));

  // Seed a two-generation rotation by hand (snapshots at stride 1 and 2),
  // then corrupt the newest one — the torn-write-plus-crash scenario.
  scrub_rotation(base);
  {
    Session session(Cluster::paper30(), config);
    SnapshotRotation rotation(base);
    session.run_until(kStride);
    rotation.write(session.serialize());
    session.run_until(2 * kStride);
    rotation.write(session.serialize());
    auto bytes = read_state_file(rotation.latest_path());
    bytes[bytes.size() / 2] ^= 0x01;
    std::FILE* f = std::fopen(rotation.latest_path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  // The first child must quarantine the corrupt latest, resume from the
  // previous generation and still land on the uninterrupted hash.
  const SupervisorResult recovered =
      run_supervised(Cluster::paper30(), config, supervised_options(base));
  EXPECT_EQ(recovered.final_clock, clean.final_clock);
  EXPECT_EQ(recovered.stream_hash, clean.stream_hash);
  EXPECT_EQ(recovered.records_written, clean.records_written);
  EXPECT_EQ(recovered.snapshots_quarantined, 1);
  scrub_rotation(base);
}

TEST(Supervisor, RefusesQuarantinedResumeSnapshot) {
  const ServiceConfig config = supervised_config("dollymp2", false, 1);
  SupervisorOptions options = supervised_options(temp_base("sup_refuse"));
  options.resume_from = options.snapshot_base + ".latest.quarantined.0";
  EXPECT_THROW(
      {
        try {
          (void)run_supervised(Cluster::paper30(), config, options);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("quarantined"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(Supervisor, ExplicitResumeFromCheckpointContinues) {
  const ServiceConfig config = supervised_config("dollymp2", false, 1);
  const std::string base = temp_base("sup_resume");
  scrub_rotation(base);
  const std::string ckpt = base + ".explicit";

  const SupervisorResult clean =
      run_supervised(Cluster::paper30(), config, supervised_options(base));

  // Cut a plain checkpoint at the first stride boundary and hand it to the
  // supervisor as the explicit starting point.  (Scoped: the supervisor
  // forks, so no session — and no worker threads — may be live then.)
  {
    Session session(Cluster::paper30(), config);
    session.run_until(kStride);
    session.checkpoint(ckpt);
  }

  scrub_rotation(base);
  SupervisorOptions options = supervised_options(base);
  options.resume_from = ckpt;
  const SupervisorResult resumed =
      run_supervised(Cluster::paper30(), config, options);
  EXPECT_EQ(resumed.final_clock, clean.final_clock);
  EXPECT_EQ(resumed.stream_hash, clean.stream_hash);
  std::remove(ckpt.c_str());
  scrub_rotation(base);
}

TEST(Supervisor, RestartBudgetExhaustionThrows) {
  const ServiceConfig config = supervised_config("dollymp2", false, 1);
  const std::string base = temp_base("sup_budget");
  scrub_rotation(base);
  SupervisorOptions options = supervised_options(base);
  options.max_restarts = 1;
  // Every child dies immediately; the second crash blows the budget.
  options.kill_at_slots = {10, 10, 10, 10};
  EXPECT_THROW(
      {
        try {
          (void)run_supervised(Cluster::paper30(), config, options);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("restart budget"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
  scrub_rotation(base);
}

TEST(Supervisor, OptionValidationRejectsBadSetups) {
  const ServiceConfig config = supervised_config("dollymp2", false, 1);
  const Cluster cluster = Cluster::paper30();
  auto reject = [&](auto&& mutate) {
    SupervisorOptions options = supervised_options(temp_base("sup_validate"));
    mutate(options);
    EXPECT_THROW((void)run_supervised(cluster, config, options), std::invalid_argument);
  };
  reject([](SupervisorOptions& o) { o.snapshot_base.clear(); });
  reject([](SupervisorOptions& o) { o.horizon_slots = 0; });
  reject([](SupervisorOptions& o) { o.checkpoint_stride_slots = 0; });
  // Bit-identity precondition: stride must land on pump boundaries.
  reject([](SupervisorOptions& o) { o.checkpoint_stride_slots = kStride + 1; });
  reject([](SupervisorOptions& o) { o.max_restarts = -1; });
  reject([](SupervisorOptions& o) { o.watchdog_seconds = 0.0; });
}

}  // namespace
}  // namespace dollymp

#endif  // !defined(_WIN32)
