file(REMOVE_RECURSE
  "CMakeFiles/dollymp_sim.dir/dollymp_sim.cpp.o"
  "CMakeFiles/dollymp_sim.dir/dollymp_sim.cpp.o.d"
  "dollymp_sim"
  "dollymp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dollymp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
