# Empty dependencies file for dollymp_sim.
# This may be replaced when dependencies are built.
