file(REMOVE_RECURSE
  "CMakeFiles/test_workload_analysis.dir/test_workload_analysis.cpp.o"
  "CMakeFiles/test_workload_analysis.dir/test_workload_analysis.cpp.o.d"
  "test_workload_analysis"
  "test_workload_analysis.pdb"
  "test_workload_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
