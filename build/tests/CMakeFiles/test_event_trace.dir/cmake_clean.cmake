file(REMOVE_RECURSE
  "CMakeFiles/test_event_trace.dir/test_event_trace.cpp.o"
  "CMakeFiles/test_event_trace.dir/test_event_trace.cpp.o.d"
  "test_event_trace"
  "test_event_trace.pdb"
  "test_event_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
