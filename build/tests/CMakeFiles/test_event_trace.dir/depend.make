# Empty dependencies file for test_event_trace.
# This may be replaced when dependencies are built.
