# Empty dependencies file for test_dollymp_features.
# This may be replaced when dependencies are built.
