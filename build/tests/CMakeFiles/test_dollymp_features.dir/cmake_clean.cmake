file(REMOVE_RECURSE
  "CMakeFiles/test_dollymp_features.dir/test_dollymp_features.cpp.o"
  "CMakeFiles/test_dollymp_features.dir/test_dollymp_features.cpp.o.d"
  "test_dollymp_features"
  "test_dollymp_features.pdb"
  "test_dollymp_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dollymp_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
