# Empty dependencies file for test_table_logging.
# This may be replaced when dependencies are built.
