# Empty dependencies file for test_sched_helpers.
# This may be replaced when dependencies are built.
