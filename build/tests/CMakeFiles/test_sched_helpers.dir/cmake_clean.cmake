file(REMOVE_RECURSE
  "CMakeFiles/test_sched_helpers.dir/test_sched_helpers.cpp.o"
  "CMakeFiles/test_sched_helpers.dir/test_sched_helpers.cpp.o.d"
  "test_sched_helpers"
  "test_sched_helpers.pdb"
  "test_sched_helpers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
