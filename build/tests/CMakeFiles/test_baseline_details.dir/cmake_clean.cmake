file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_details.dir/test_baseline_details.cpp.o"
  "CMakeFiles/test_baseline_details.dir/test_baseline_details.cpp.o.d"
  "test_baseline_details"
  "test_baseline_details.pdb"
  "test_baseline_details[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
