# Empty compiler generated dependencies file for test_baseline_details.
# This may be replaced when dependencies are built.
