# Empty dependencies file for test_job_dag.
# This may be replaced when dependencies are built.
