file(REMOVE_RECURSE
  "CMakeFiles/test_job_dag.dir/test_job_dag.cpp.o"
  "CMakeFiles/test_job_dag.dir/test_job_dag.cpp.o.d"
  "test_job_dag"
  "test_job_dag.pdb"
  "test_job_dag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_job_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
