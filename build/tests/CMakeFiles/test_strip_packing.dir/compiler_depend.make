# Empty compiler generated dependencies file for test_strip_packing.
# This may be replaced when dependencies are built.
