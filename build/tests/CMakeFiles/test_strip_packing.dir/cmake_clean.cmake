file(REMOVE_RECURSE
  "CMakeFiles/test_strip_packing.dir/test_strip_packing.cpp.o"
  "CMakeFiles/test_strip_packing.dir/test_strip_packing.cpp.o.d"
  "test_strip_packing"
  "test_strip_packing.pdb"
  "test_strip_packing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strip_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
