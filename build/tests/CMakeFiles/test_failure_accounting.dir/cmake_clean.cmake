file(REMOVE_RECURSE
  "CMakeFiles/test_failure_accounting.dir/test_failure_accounting.cpp.o"
  "CMakeFiles/test_failure_accounting.dir/test_failure_accounting.cpp.o.d"
  "test_failure_accounting"
  "test_failure_accounting.pdb"
  "test_failure_accounting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
