file(REMOVE_RECURSE
  "CMakeFiles/test_background_load.dir/test_background_load.cpp.o"
  "CMakeFiles/test_background_load.dir/test_background_load.cpp.o.d"
  "test_background_load"
  "test_background_load.pdb"
  "test_background_load[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_background_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
