# Empty compiler generated dependencies file for test_background_load.
# This may be replaced when dependencies are built.
