# Empty dependencies file for test_trace_io_errors.
# This may be replaced when dependencies are built.
