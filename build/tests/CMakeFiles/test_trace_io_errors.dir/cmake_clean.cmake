file(REMOVE_RECURSE
  "CMakeFiles/test_trace_io_errors.dir/test_trace_io_errors.cpp.o"
  "CMakeFiles/test_trace_io_errors.dir/test_trace_io_errors.cpp.o.d"
  "test_trace_io_errors"
  "test_trace_io_errors.pdb"
  "test_trace_io_errors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_io_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
