file(REMOVE_RECURSE
  "CMakeFiles/test_hopper_apps.dir/test_hopper_apps.cpp.o"
  "CMakeFiles/test_hopper_apps.dir/test_hopper_apps.cpp.o.d"
  "test_hopper_apps"
  "test_hopper_apps.pdb"
  "test_hopper_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hopper_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
