# Empty dependencies file for test_hopper_apps.
# This may be replaced when dependencies are built.
