# Empty dependencies file for fig09_clone_count_ablation.
# This may be replaced when dependencies are built.
