file(REMOVE_RECURSE
  "CMakeFiles/fig09_clone_count_ablation.dir/fig09_clone_count_ablation.cpp.o"
  "CMakeFiles/fig09_clone_count_ablation.dir/fig09_clone_count_ablation.cpp.o.d"
  "fig09_clone_count_ablation"
  "fig09_clone_count_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_clone_count_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
