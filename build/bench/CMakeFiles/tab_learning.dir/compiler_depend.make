# Empty compiler generated dependencies file for tab_learning.
# This may be replaced when dependencies are built.
