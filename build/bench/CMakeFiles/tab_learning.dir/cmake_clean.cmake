file(REMOVE_RECURSE
  "CMakeFiles/tab_learning.dir/tab_learning.cpp.o"
  "CMakeFiles/tab_learning.dir/tab_learning.cpp.o.d"
  "tab_learning"
  "tab_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
