# Empty dependencies file for fig01_wordcount_variability.
# This may be replaced when dependencies are built.
