file(REMOVE_RECURSE
  "libdollymp_bench_common.a"
)
