# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dollymp_bench_common.
