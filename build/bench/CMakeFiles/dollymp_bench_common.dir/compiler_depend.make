# Empty compiler generated dependencies file for dollymp_bench_common.
# This may be replaced when dependencies are built.
