file(REMOVE_RECURSE
  "CMakeFiles/dollymp_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/dollymp_bench_common.dir/bench_common.cpp.o.d"
  "libdollymp_bench_common.a"
  "libdollymp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dollymp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
