file(REMOVE_RECURSE
  "CMakeFiles/fig04_light_load.dir/fig04_light_load.cpp.o"
  "CMakeFiles/fig04_light_load.dir/fig04_light_load.cpp.o.d"
  "fig04_light_load"
  "fig04_light_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_light_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
