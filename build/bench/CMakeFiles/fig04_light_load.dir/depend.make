# Empty dependencies file for fig04_light_load.
# This may be replaced when dependencies are built.
