file(REMOVE_RECURSE
  "CMakeFiles/tab_fairness.dir/tab_fairness.cpp.o"
  "CMakeFiles/tab_fairness.dir/tab_fairness.cpp.o.d"
  "tab_fairness"
  "tab_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
