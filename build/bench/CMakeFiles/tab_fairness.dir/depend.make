# Empty dependencies file for tab_fairness.
# This may be replaced when dependencies are built.
