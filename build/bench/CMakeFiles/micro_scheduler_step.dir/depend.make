# Empty dependencies file for micro_scheduler_step.
# This may be replaced when dependencies are built.
