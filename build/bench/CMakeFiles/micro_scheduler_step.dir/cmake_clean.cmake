file(REMOVE_RECURSE
  "CMakeFiles/micro_scheduler_step.dir/micro_scheduler_step.cpp.o"
  "CMakeFiles/micro_scheduler_step.dir/micro_scheduler_step.cpp.o.d"
  "micro_scheduler_step"
  "micro_scheduler_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_scheduler_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
