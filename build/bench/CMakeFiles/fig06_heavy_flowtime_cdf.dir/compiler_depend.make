# Empty compiler generated dependencies file for fig06_heavy_flowtime_cdf.
# This may be replaced when dependencies are built.
