# Empty dependencies file for fig10_load_sweep.
# This may be replaced when dependencies are built.
