file(REMOVE_RECURSE
  "CMakeFiles/fig02_motivating_example.dir/fig02_motivating_example.cpp.o"
  "CMakeFiles/fig02_motivating_example.dir/fig02_motivating_example.cpp.o.d"
  "fig02_motivating_example"
  "fig02_motivating_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_motivating_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
