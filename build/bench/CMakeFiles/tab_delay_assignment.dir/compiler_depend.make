# Empty compiler generated dependencies file for tab_delay_assignment.
# This may be replaced when dependencies are built.
