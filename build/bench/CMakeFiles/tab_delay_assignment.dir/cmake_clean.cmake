file(REMOVE_RECURSE
  "CMakeFiles/tab_delay_assignment.dir/tab_delay_assignment.cpp.o"
  "CMakeFiles/tab_delay_assignment.dir/tab_delay_assignment.cpp.o.d"
  "tab_delay_assignment"
  "tab_delay_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_delay_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
