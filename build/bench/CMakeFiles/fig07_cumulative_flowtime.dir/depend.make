# Empty dependencies file for fig07_cumulative_flowtime.
# This may be replaced when dependencies are built.
