file(REMOVE_RECURSE
  "CMakeFiles/fig07_cumulative_flowtime.dir/fig07_cumulative_flowtime.cpp.o"
  "CMakeFiles/fig07_cumulative_flowtime.dir/fig07_cumulative_flowtime.cpp.o.d"
  "fig07_cumulative_flowtime"
  "fig07_cumulative_flowtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cumulative_flowtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
