# Empty dependencies file for tab_theory.
# This may be replaced when dependencies are built.
