file(REMOVE_RECURSE
  "CMakeFiles/tab_theory.dir/tab_theory.cpp.o"
  "CMakeFiles/tab_theory.dir/tab_theory.cpp.o.d"
  "tab_theory"
  "tab_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
