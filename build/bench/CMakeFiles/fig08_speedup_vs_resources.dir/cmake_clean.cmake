file(REMOVE_RECURSE
  "CMakeFiles/fig08_speedup_vs_resources.dir/fig08_speedup_vs_resources.cpp.o"
  "CMakeFiles/fig08_speedup_vs_resources.dir/fig08_speedup_vs_resources.cpp.o.d"
  "fig08_speedup_vs_resources"
  "fig08_speedup_vs_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_speedup_vs_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
