# Empty compiler generated dependencies file for fig08_speedup_vs_resources.
# This may be replaced when dependencies are built.
