# Empty dependencies file for fig05_heavy_running_cdf.
# This may be replaced when dependencies are built.
