# Empty compiler generated dependencies file for fig11_vs_carbyne.
# This may be replaced when dependencies are built.
