file(REMOVE_RECURSE
  "CMakeFiles/fig11_vs_carbyne.dir/fig11_vs_carbyne.cpp.o"
  "CMakeFiles/fig11_vs_carbyne.dir/fig11_vs_carbyne.cpp.o.d"
  "fig11_vs_carbyne"
  "fig11_vs_carbyne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vs_carbyne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
