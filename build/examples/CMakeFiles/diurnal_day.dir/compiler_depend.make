# Empty compiler generated dependencies file for diurnal_day.
# This may be replaced when dependencies are built.
