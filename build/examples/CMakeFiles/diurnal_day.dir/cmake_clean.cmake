file(REMOVE_RECURSE
  "CMakeFiles/diurnal_day.dir/diurnal_day.cpp.o"
  "CMakeFiles/diurnal_day.dir/diurnal_day.cpp.o.d"
  "diurnal_day"
  "diurnal_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diurnal_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
