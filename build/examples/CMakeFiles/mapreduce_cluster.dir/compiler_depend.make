# Empty compiler generated dependencies file for mapreduce_cluster.
# This may be replaced when dependencies are built.
