file(REMOVE_RECURSE
  "CMakeFiles/cloning_whatif.dir/cloning_whatif.cpp.o"
  "CMakeFiles/cloning_whatif.dir/cloning_whatif.cpp.o.d"
  "cloning_whatif"
  "cloning_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloning_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
