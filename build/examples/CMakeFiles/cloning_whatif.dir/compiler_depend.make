# Empty compiler generated dependencies file for cloning_whatif.
# This may be replaced when dependencies are built.
