
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/background_load.cpp" "src/CMakeFiles/dollymp.dir/cluster/background_load.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/cluster/background_load.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/dollymp.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/locality.cpp" "src/CMakeFiles/dollymp.dir/cluster/locality.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/cluster/locality.cpp.o.d"
  "/root/repo/src/cluster/server.cpp" "src/CMakeFiles/dollymp.dir/cluster/server.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/cluster/server.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/CMakeFiles/dollymp.dir/common/csv.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/common/csv.cpp.o.d"
  "/root/repo/src/common/distributions.cpp" "src/CMakeFiles/dollymp.dir/common/distributions.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/common/distributions.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/dollymp.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/resources.cpp" "src/CMakeFiles/dollymp.dir/common/resources.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/common/resources.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/dollymp.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/dollymp.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/dollymp.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/dollymp.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/job/dag.cpp" "src/CMakeFiles/dollymp.dir/job/dag.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/job/dag.cpp.o.d"
  "/root/repo/src/job/effective.cpp" "src/CMakeFiles/dollymp.dir/job/effective.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/job/effective.cpp.o.d"
  "/root/repo/src/job/job.cpp" "src/CMakeFiles/dollymp.dir/job/job.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/job/job.cpp.o.d"
  "/root/repo/src/learn/pocd.cpp" "src/CMakeFiles/dollymp.dir/learn/pocd.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/learn/pocd.cpp.o.d"
  "/root/repo/src/learn/server_scorer.cpp" "src/CMakeFiles/dollymp.dir/learn/server_scorer.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/learn/server_scorer.cpp.o.d"
  "/root/repo/src/metrics/experiment.cpp" "src/CMakeFiles/dollymp.dir/metrics/experiment.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/metrics/experiment.cpp.o.d"
  "/root/repo/src/metrics/records.cpp" "src/CMakeFiles/dollymp.dir/metrics/records.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/metrics/records.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/CMakeFiles/dollymp.dir/metrics/report.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/metrics/report.cpp.o.d"
  "/root/repo/src/sched/capacity.cpp" "src/CMakeFiles/dollymp.dir/sched/capacity.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sched/capacity.cpp.o.d"
  "/root/repo/src/sched/carbyne.cpp" "src/CMakeFiles/dollymp.dir/sched/carbyne.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sched/carbyne.cpp.o.d"
  "/root/repo/src/sched/dollymp.cpp" "src/CMakeFiles/dollymp.dir/sched/dollymp.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sched/dollymp.cpp.o.d"
  "/root/repo/src/sched/drf.cpp" "src/CMakeFiles/dollymp.dir/sched/drf.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sched/drf.cpp.o.d"
  "/root/repo/src/sched/hopper.cpp" "src/CMakeFiles/dollymp.dir/sched/hopper.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sched/hopper.cpp.o.d"
  "/root/repo/src/sched/knapsack.cpp" "src/CMakeFiles/dollymp.dir/sched/knapsack.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sched/knapsack.cpp.o.d"
  "/root/repo/src/sched/priority.cpp" "src/CMakeFiles/dollymp.dir/sched/priority.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sched/priority.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/dollymp.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/sched/simple_priority.cpp" "src/CMakeFiles/dollymp.dir/sched/simple_priority.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sched/simple_priority.cpp.o.d"
  "/root/repo/src/sched/strip_packing.cpp" "src/CMakeFiles/dollymp.dir/sched/strip_packing.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sched/strip_packing.cpp.o.d"
  "/root/repo/src/sched/tetris.cpp" "src/CMakeFiles/dollymp.dir/sched/tetris.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sched/tetris.cpp.o.d"
  "/root/repo/src/sim/execution.cpp" "src/CMakeFiles/dollymp.dir/sim/execution.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sim/execution.cpp.o.d"
  "/root/repo/src/sim/runtime_state.cpp" "src/CMakeFiles/dollymp.dir/sim/runtime_state.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sim/runtime_state.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/dollymp.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/speculation.cpp" "src/CMakeFiles/dollymp.dir/sim/speculation.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sim/speculation.cpp.o.d"
  "/root/repo/src/sim/types.cpp" "src/CMakeFiles/dollymp.dir/sim/types.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/sim/types.cpp.o.d"
  "/root/repo/src/workload/analysis.cpp" "src/CMakeFiles/dollymp.dir/workload/analysis.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/workload/analysis.cpp.o.d"
  "/root/repo/src/workload/apps.cpp" "src/CMakeFiles/dollymp.dir/workload/apps.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/workload/apps.cpp.o.d"
  "/root/repo/src/workload/arrivals.cpp" "src/CMakeFiles/dollymp.dir/workload/arrivals.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/workload/arrivals.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/CMakeFiles/dollymp.dir/workload/trace_io.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/workload/trace_io.cpp.o.d"
  "/root/repo/src/workload/trace_model.cpp" "src/CMakeFiles/dollymp.dir/workload/trace_model.cpp.o" "gcc" "src/CMakeFiles/dollymp.dir/workload/trace_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
