file(REMOVE_RECURSE
  "libdollymp.a"
)
