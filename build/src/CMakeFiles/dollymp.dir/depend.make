# Empty dependencies file for dollymp.
# This may be replaced when dependencies are built.
