// dollymp_sim — command-line driver for the simulator.
//
// Run any scheduler against a synthetic or file-based workload and get a
// summary on stdout plus (optionally) per-job records as CSV.
//
//   dollymp_sim [options]
//     --cluster  paper30 | google:<N> | uniform:<N>:<cpu>:<mem>   (default paper30)
//     --inventory paper30 | google | google-trace   named inventory; combine
//                        with --servers to scale it (google-trace defaults
//                        to the full 30,000-server trace shape)
//     --servers N        server count for --inventory
//     --scheduler capacity|hopper|drf|tetris|carbyne|srpt|svf|dollymp<0-3> (default dollymp2)
//     --jobs N           synthesize N trace-model jobs          (default 200)
//     --gap SECONDS      mean Poisson inter-arrival gap         (default 20)
//     --trace FILE       replay a trace CSV instead of synthesizing
//     --seed S           environment seed                        (default 1)
//     --slot SECONDS     slot length                             (default 5)
//     --clones K         DollyMP clone budget override
//     --straggler-aware  enable learned server scoring (DollyMP only)
//     --failures MTBF:REPAIR  enable machine failures (seconds)
//     --out FILE         write per-job records as CSV
//     --compare          run ALL schedulers on the workload (paired) and
//                        print a comparison table instead of one summary
//     --quiet            summary line only
//     --help
//
// Examples:
//   dollymp_sim --scheduler tetris --jobs 500 --gap 10
//   dollymp_sim --cluster google:300 --trace mytrace.csv --out results.csv
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/metrics/experiment.h"
#include "dollymp/metrics/report.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/carbyne.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/hopper.h"
#include "dollymp/sched/simple_priority.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_io.h"
#include "dollymp/workload/trace_model.h"

namespace {

using namespace dollymp;

struct Options {
  std::string cluster = "paper30";
  std::string inventory;
  int servers = 0;
  std::string scheduler = "dollymp2";
  int jobs = 200;
  double gap = 20.0;
  std::string trace;
  std::uint64_t seed = 1;
  double slot = 5.0;
  int clones = -1;
  bool straggler_aware = false;
  double failure_mtbf = 0.0;
  double failure_repair = 0.0;
  std::string out;
  bool quiet = false;
  bool compare = false;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: dollymp_sim [--cluster paper30|google:N|uniform:N:CPU:MEM]\n"
      "                   [--inventory paper30|google|google-trace] [--servers N]\n"
      "                   [--scheduler capacity|hopper|drf|tetris|carbyne|srpt|svf|dollymp0-3]\n"
      "                   [--jobs N] [--gap SECONDS] [--trace FILE] [--seed S]\n"
      "                   [--slot SECONDS] [--clones K] [--straggler-aware]\n"
      "                   [--failures MTBF:REPAIR] [--out FILE] [--quiet]\n";
  std::exit(code);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream ss(text);
  std::string token;
  while (std::getline(ss, token, sep)) parts.push_back(token);
  return parts;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      usage(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--cluster") opt.cluster = need_value(i);
    else if (arg == "--inventory") opt.inventory = need_value(i);
    else if (arg == "--servers") opt.servers = std::stoi(need_value(i));
    else if (arg == "--scheduler") opt.scheduler = need_value(i);
    else if (arg == "--jobs") opt.jobs = std::stoi(need_value(i));
    else if (arg == "--gap") opt.gap = std::stod(need_value(i));
    else if (arg == "--trace") opt.trace = need_value(i);
    else if (arg == "--seed") opt.seed = std::stoull(need_value(i));
    else if (arg == "--slot") opt.slot = std::stod(need_value(i));
    else if (arg == "--clones") opt.clones = std::stoi(need_value(i));
    else if (arg == "--straggler-aware") opt.straggler_aware = true;
    else if (arg == "--failures") {
      const auto parts = split(need_value(i), ':');
      if (parts.size() != 2) {
        std::cerr << "--failures wants MTBF:REPAIR seconds\n";
        usage(2);
      }
      opt.failure_mtbf = std::stod(parts[0]);
      opt.failure_repair = std::stod(parts[1]);
    } else if (arg == "--out") opt.out = need_value(i);
    else if (arg == "--compare") opt.compare = true;
    else if (arg == "--quiet") opt.quiet = true;
    else {
      std::cerr << "unknown option " << arg << "\n";
      usage(2);
    }
  }
  return opt;
}

Cluster make_cluster_from_inventory(const Options& opt) {
  const auto servers = static_cast<std::size_t>(opt.servers);
  if (opt.inventory == "paper30") return Cluster::paper30();
  if (opt.inventory == "google") return Cluster::google_like(servers > 0 ? servers : 100);
  if (opt.inventory == "google-trace") {
    return servers > 0 ? Cluster::google_trace(servers) : Cluster::google_trace();
  }
  std::cerr << "unknown inventory '" << opt.inventory << "'\n";
  usage(2);
}

Cluster make_cluster(const std::string& spec) {
  if (spec == "paper30") return Cluster::paper30();
  const auto parts = split(spec, ':');
  if (parts.size() == 2 && parts[0] == "google") {
    return Cluster::google_like(static_cast<std::size_t>(std::stoul(parts[1])));
  }
  if (parts.size() == 4 && parts[0] == "uniform") {
    return Cluster::uniform(static_cast<std::size_t>(std::stoul(parts[1])),
                            {std::stod(parts[2]), std::stod(parts[3])});
  }
  std::cerr << "unknown cluster spec '" << spec << "'\n";
  usage(2);
}

std::unique_ptr<Scheduler> make_policy(const Options& opt) {
  const std::string& key = opt.scheduler;
  if (key == "capacity") return std::make_unique<CapacityScheduler>();
  if (key == "hopper") return std::make_unique<HopperScheduler>();
  if (key == "drf") return std::make_unique<DrfScheduler>();
  if (key == "tetris") return std::make_unique<TetrisScheduler>();
  if (key == "carbyne") return std::make_unique<CarbyneScheduler>();
  if (key == "srpt") {
    return std::make_unique<SimplePriorityScheduler>(
        SimplePriorityConfig{SimplePriorityRule::kSrpt, 1.5, 0});
  }
  if (key == "svf") {
    return std::make_unique<SimplePriorityScheduler>(
        SimplePriorityConfig{SimplePriorityRule::kSvf, 1.5, 0});
  }
  if (key.rfind("dollymp", 0) == 0 && key.size() == 8) {
    DollyMPConfig config;
    config.clone_budget = key[7] - '0';
    if (opt.clones >= 0) config.clone_budget = opt.clones;
    config.straggler_aware = opt.straggler_aware;
    return std::make_unique<DollyMPScheduler>(config);
  }
  std::cerr << "unknown scheduler '" << key << "'\n";
  usage(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  const Cluster cluster =
      opt.inventory.empty() ? make_cluster(opt.cluster) : make_cluster_from_inventory(opt);
  std::vector<JobSpec> jobs;
  if (!opt.trace.empty()) {
    jobs = load_trace(opt.trace);
  } else {
    TraceModel model({}, opt.seed);
    jobs = model.sample_jobs(opt.jobs);
    assign_poisson_arrivals(jobs, opt.gap, opt.seed + 1);
  }

  SimConfig config;
  config.slot_seconds = opt.slot;
  config.seed = opt.seed;
  if (opt.failure_mtbf > 0.0) {
    config.failures.enabled = true;
    config.failures.mean_time_to_failure_seconds = opt.failure_mtbf;
    config.failures.mean_repair_seconds = opt.failure_repair;
  }

  if (opt.compare) {
    ComparisonSpec spec;
    spec.cluster = cluster;
    spec.config = config;
    spec.jobs = jobs;
    std::vector<ComparisonEntry> entries;
    for (const char* key :
         {"capacity", "drf", "tetris", "carbyne", "srpt", "svf", "dollymp0", "dollymp2"}) {
      entries.push_back({key, [key] {
                           Options o;
                           o.scheduler = key;
                           return make_policy(o);
                         }});
    }
    ThreadPool pool;
    const auto results = run_comparison(spec, entries, &pool);
    std::vector<RunSummary> summaries;
    summaries.reserve(results.size());
    for (const auto& r : results) summaries.push_back(summarize(r));
    std::cout << render_summaries(summaries);
    std::cout << render_control_plane(summaries);
    return 0;
  }

  auto scheduler = make_policy(opt);
  const SimResult result = simulate(cluster, config, jobs, *scheduler);
  const RunSummary summary = summarize(result);

  if (opt.quiet) {
    std::cout << result.scheduler << " jobs=" << summary.jobs
              << " mean_flow_s=" << summary.mean_flowtime
              << " makespan_s=" << summary.makespan << "\n";
  } else {
    std::cout << render_summaries({summary});
    std::cout << render_control_plane({summary});
    std::cout << render_cdf_rows("flowtime_s", flowtime_cdf(result));
    std::cout << render_cdf_rows("running_s", running_time_cdf(result));
  }
  if (!opt.out.empty()) {
    save_results(result, opt.out);
    std::cout << "wrote per-job records to " << opt.out << "\n";
  }
  return 0;
}
