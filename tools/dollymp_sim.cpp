// dollymp_sim — command-line driver for the simulator.
//
// Run any scheduler against a synthetic or file-based workload and get a
// summary on stdout plus (optionally) per-job records as CSV.
//
//   dollymp_sim [options]
//     --cluster  paper30 | google:<N> | uniform:<N>:<cpu>:<mem>   (default paper30)
//     --inventory paper30 | google | google-trace   named inventory; combine
//                        with --servers to scale it (google-trace defaults
//                        to the full 30,000-server trace shape)
//     --servers N        server count for --inventory
//     --scheduler capacity|hopper|drf|tetris|carbyne|srpt|svf|dollymp<0-3> (default dollymp2)
//     --jobs N           synthesize N trace-model jobs          (default 200)
//     --gap SECONDS      mean Poisson inter-arrival gap         (default 20)
//     --gpus K           mix K gang-scheduled ML training jobs into the
//                        workload, report GPUs as a third resource dimension,
//                        and (unless a cluster was named) run on the mixed
//                        gpu-pod inventory; --inventory gpu selects it alone
//     --trace FILE       replay a trace CSV instead of synthesizing
//     --seed S           environment seed                        (default 1)
//     --slot SECONDS     slot length                             (default 5)
//     --clones K         DollyMP clone budget override
//     --straggler-aware  enable learned server scoring (DollyMP only)
//     --failures MTBF:REPAIR  enable machine failures (seconds)
//     --rack-faults MTTF:REPAIR   enable rack-correlated outages (seconds)
//     --fail-slow ONSET:RECOVERY:FACTOR  enable fail-slow servers: mean
//                        seconds to onset/recovery, execution slowdown
//     --copy-faults MEAN enable transient copy faults (mean seconds between)
//     --weibull SHAPE    draw all fault delays from a Weibull with this
//                        shape instead of the exponential (k<1: infant
//                        mortality; k>1: wear-out; k=1: exponential)
//     --resilience       enable the DollyMP resilience policies (retry
//                        backoff, quarantine, clone degradation)
//     --out FILE         write per-job records as CSV
//     --trace-out FILE   record the run and write Chrome trace JSON
//                        (load it at https://ui.perfetto.dev)
//     --log-out FILE     record the run and write the binary flight log
//     --verify-log FILE  run once and verify against a saved flight log
//     --flight-recorder N  keep a bounded ring of the last N records;
//                        dumped decoded to stderr if the run fails
//     --verify-replay    run the config twice and fail on any divergence
//                        (exit 1), reporting the first divergent record
//     --compare          run ALL schedulers on the workload (paired) and
//                        print a comparison table instead of one summary
//     --quiet            summary line only
//     --help
//
// Flags also accept --flag=value.  Unknown flags are rejected.
//
// Examples:
//   dollymp_sim --scheduler tetris --jobs 500 --gap 10
//   dollymp_sim --cluster google:300 --trace mytrace.csv --out results.csv
//   dollymp_sim --jobs 50 --trace-out run.trace.json
//   dollymp_sim --inventory google-trace --servers 3000 --verify-replay
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/cli.h"
#include "dollymp/metrics/experiment.h"
#include "dollymp/metrics/report.h"
#include "dollymp/obs/chrome_trace.h"
#include "dollymp/obs/recorder.h"
#include "dollymp/obs/replay.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/carbyne.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/hopper.h"
#include "dollymp/sched/simple_priority.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/apps.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_io.h"
#include "dollymp/workload/trace_model.h"

namespace {

using namespace dollymp;

struct Options {
  std::string cluster = "paper30";
  std::string inventory;
  int servers = 0;
  std::string scheduler = "dollymp2";
  int jobs = 200;
  double gap = 20.0;
  int gpus = 0;
  std::string trace;
  std::uint64_t seed = 1;
  double slot = 5.0;
  int threads = 1;
  int clones = -1;
  bool straggler_aware = false;
  double failure_mtbf = 0.0;
  double failure_repair = 0.0;
  double rack_mttf = 0.0;
  double rack_repair = 0.0;
  double fail_slow_onset = 0.0;
  double fail_slow_recovery = 0.0;
  double fail_slow_factor = 0.0;
  double copy_fault_mean = 0.0;
  double weibull_shape = 0.0;
  bool resilience = false;
  std::string out;
  std::string trace_out;
  std::string log_out;
  std::string verify_log;
  std::size_t flight_recorder = 0;
  bool verify_replay = false;
  bool quiet = false;
  bool compare = false;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: dollymp_sim [--cluster paper30|google:N|uniform:N:CPU:MEM]\n"
      "                   [--inventory paper30|google|google-trace|gpu] [--servers N]\n"
      "                   [--scheduler capacity|hopper|drf|tetris|carbyne|srpt|svf|dollymp0-3]\n"
      "                   [--jobs N] [--gap SECONDS] [--gpus K] [--trace FILE] [--seed S]\n"
      "                   [--slot SECONDS] [--threads N] [--clones K] [--straggler-aware]\n"
      "                   [--failures MTBF:REPAIR] [--rack-faults MTTF:REPAIR]\n"
      "                   [--fail-slow ONSET:RECOVERY:FACTOR] [--copy-faults MEAN]\n"
      "                   [--weibull SHAPE] [--resilience]\n"
      "                   [--out FILE] [--compare] [--quiet]\n"
      "\n"
      "flight recorder / tracing (flags also accept --flag=value):\n"
      "  --trace-out FILE     record the run and write Chrome trace JSON with\n"
      "                       per-server lanes (open at https://ui.perfetto.dev)\n"
      "  --log-out FILE       record the run and write the binary flight log\n"
      "  --verify-log FILE    run once and verify against a saved flight log;\n"
      "                       exit 1 with the first divergent record on mismatch\n"
      "  --flight-recorder N  bounded ring of the newest N records, decoded to\n"
      "                       stderr when the run throws (dump-on-anomaly)\n"
      "  --verify-replay      run the config twice, compare the record streams,\n"
      "                       exit 1 with the first divergent record decoded\n"
      "\n"
      "deterministic parallel core:\n"
      "  --threads N          shard scheduler scans across N worker threads\n"
      "                       (0 = hardware concurrency, 1 = sequential).\n"
      "                       Results are bit-identical for every N — check\n"
      "                       with --threads N --verify-replay\n";
  std::exit(code);
}

using cli::split;

/// Every flag the dispatch loop below accepts — the did-you-mean corpus.
const std::vector<std::string> kKnownFlags = {
    "--help",          "--cluster",      "--inventory",       "--servers",
    "--scheduler",     "--jobs",         "--gap",             "--gpus",
    "--trace",
    "--seed",          "--slot",         "--threads",         "--clones",
    "--straggler-aware", "--failures",   "--rack-faults",     "--fail-slow",
    "--copy-faults",   "--weibull",      "--resilience",      "--out",
    "--trace-out",     "--log-out",      "--verify-log",      "--flight-recorder",
    "--verify-replay", "--compare",      "--quiet"};

Options parse_options(int argc, char** argv) {
  Options opt;
  const std::vector<std::string> args = cli::normalize_args(argc, argv);
  const int n = static_cast<int>(args.size());
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= n) {
      std::cerr << "missing value for " << args[static_cast<std::size_t>(i)] << "\n";
      usage(2);
    }
    return args[static_cast<std::size_t>(++i)];
  };
  for (int i = 0; i < n; ++i) {
    const std::string& arg = args[static_cast<std::size_t>(i)];
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--cluster") opt.cluster = need_value(i);
    else if (arg == "--inventory") opt.inventory = need_value(i);
    else if (arg == "--servers") opt.servers = std::stoi(need_value(i));
    else if (arg == "--scheduler") opt.scheduler = need_value(i);
    else if (arg == "--jobs") opt.jobs = std::stoi(need_value(i));
    else if (arg == "--gap") opt.gap = std::stod(need_value(i));
    else if (arg == "--gpus") opt.gpus = std::stoi(need_value(i));
    else if (arg == "--trace") opt.trace = need_value(i);
    else if (arg == "--seed") opt.seed = std::stoull(need_value(i));
    else if (arg == "--slot") opt.slot = std::stod(need_value(i));
    else if (arg == "--threads") opt.threads = std::stoi(need_value(i));
    else if (arg == "--clones") opt.clones = std::stoi(need_value(i));
    else if (arg == "--straggler-aware") opt.straggler_aware = true;
    else if (arg == "--failures") {
      const auto parts = split(need_value(i), ':');
      if (parts.size() != 2) {
        std::cerr << "--failures wants MTBF:REPAIR seconds\n";
        usage(2);
      }
      opt.failure_mtbf = std::stod(parts[0]);
      opt.failure_repair = std::stod(parts[1]);
    } else if (arg == "--rack-faults") {
      const auto parts = split(need_value(i), ':');
      if (parts.size() != 2) {
        std::cerr << "--rack-faults wants MTTF:REPAIR seconds\n";
        usage(2);
      }
      opt.rack_mttf = std::stod(parts[0]);
      opt.rack_repair = std::stod(parts[1]);
    } else if (arg == "--fail-slow") {
      const auto parts = split(need_value(i), ':');
      if (parts.size() != 3) {
        std::cerr << "--fail-slow wants ONSET:RECOVERY:FACTOR\n";
        usage(2);
      }
      opt.fail_slow_onset = std::stod(parts[0]);
      opt.fail_slow_recovery = std::stod(parts[1]);
      opt.fail_slow_factor = std::stod(parts[2]);
    } else if (arg == "--copy-faults") opt.copy_fault_mean = std::stod(need_value(i));
    else if (arg == "--weibull") opt.weibull_shape = std::stod(need_value(i));
    else if (arg == "--resilience") opt.resilience = true;
    else if (arg == "--out") opt.out = need_value(i);
    else if (arg == "--trace-out") opt.trace_out = need_value(i);
    else if (arg == "--log-out") opt.log_out = need_value(i);
    else if (arg == "--verify-log") opt.verify_log = need_value(i);
    else if (arg == "--flight-recorder") {
      const long long cap = std::stoll(need_value(i));
      if (cap <= 0) {
        std::cerr << "--flight-recorder wants a positive ring capacity\n";
        usage(2);
      }
      opt.flight_recorder = static_cast<std::size_t>(cap);
    }
    else if (arg == "--verify-replay") opt.verify_replay = true;
    else if (arg == "--compare") opt.compare = true;
    else if (arg == "--quiet") opt.quiet = true;
    else {
      std::cerr << cli::unknown_flag_message(arg, kKnownFlags) << "\n";
      usage(2);
    }
  }
  return opt;
}

Cluster make_cluster_from_inventory(const Options& opt) {
  const auto servers = static_cast<std::size_t>(opt.servers);
  if (opt.inventory == "paper30") return Cluster::paper30();
  if (opt.inventory == "google") return Cluster::google_like(servers > 0 ? servers : 100);
  if (opt.inventory == "google-trace") {
    return servers > 0 ? Cluster::google_trace(servers) : Cluster::google_trace();
  }
  if (opt.inventory == "gpu") return Cluster::gpu_pods(servers > 0 ? servers : 64);
  std::cerr << "unknown inventory '" << opt.inventory << "'\n";
  usage(2);
}

Cluster make_cluster(const std::string& spec) {
  if (spec == "paper30") return Cluster::paper30();
  const auto parts = split(spec, ':');
  if (parts.size() == 2 && parts[0] == "google") {
    return Cluster::google_like(static_cast<std::size_t>(std::stoul(parts[1])));
  }
  if (parts.size() == 4 && parts[0] == "uniform") {
    return Cluster::uniform(static_cast<std::size_t>(std::stoul(parts[1])),
                            {std::stod(parts[2]), std::stod(parts[3])});
  }
  std::cerr << "unknown cluster spec '" << spec << "'\n";
  usage(2);
}

std::unique_ptr<Scheduler> make_policy(const Options& opt) {
  const std::string& key = opt.scheduler;
  if (opt.resilience && key.rfind("dollymp", 0) != 0) {
    std::cerr << "--resilience only applies to the dollymp schedulers\n";
    usage(2);
  }
  if (key == "capacity") return std::make_unique<CapacityScheduler>();
  if (key == "hopper") return std::make_unique<HopperScheduler>();
  if (key == "drf") return std::make_unique<DrfScheduler>();
  if (key == "tetris") return std::make_unique<TetrisScheduler>();
  if (key == "carbyne") return std::make_unique<CarbyneScheduler>();
  if (key == "srpt") {
    return std::make_unique<SimplePriorityScheduler>(
        SimplePriorityConfig{SimplePriorityRule::kSrpt, 1.5, 0});
  }
  if (key == "svf") {
    return std::make_unique<SimplePriorityScheduler>(
        SimplePriorityConfig{SimplePriorityRule::kSvf, 1.5, 0});
  }
  if (key.rfind("dollymp", 0) == 0 && key.size() == 8) {
    DollyMPConfig config;
    config.clone_budget = key[7] - '0';
    if (opt.clones >= 0) config.clone_budget = opt.clones;
    config.straggler_aware = opt.straggler_aware;
    config.resilience.enabled = opt.resilience;
    return std::make_unique<DollyMPScheduler>(config);
  }
  std::cerr << "unknown scheduler '" << key << "'\n";
  usage(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_options(argc, argv);
  // The GPU scenario defaults to the mixed gpu-pod inventory, but an
  // explicit --cluster/--inventory choice wins.
  if (opt.gpus > 0 && opt.inventory.empty() && opt.cluster == "paper30") {
    opt.inventory = "gpu";
  }

  const Cluster cluster =
      opt.inventory.empty() ? make_cluster(opt.cluster) : make_cluster_from_inventory(opt);
  std::vector<JobSpec> jobs;
  if (!opt.trace.empty()) {
    jobs = load_trace(opt.trace);
  } else {
    TraceModel model({}, opt.seed);
    jobs = model.sample_jobs(opt.jobs);
    assign_poisson_arrivals(jobs, opt.gap, opt.seed + 1);
  }
  if (opt.gpus > 0) {
    JobId next_id = 0;
    for (const auto& job : jobs) next_id = std::max(next_id, job.id + 1);
    std::vector<JobSpec> trainers;
    trainers.reserve(static_cast<std::size_t>(opt.gpus));
    for (int k = 0; k < opt.gpus; ++k) {
      trainers.push_back(make_mltrain(next_id + k));
    }
    // Training jobs trickle in more slowly than the analytics stream.
    assign_poisson_arrivals(trainers, opt.gap * 4.0, opt.seed + 2);
    jobs.insert(jobs.end(), trainers.begin(), trainers.end());
  }

  SimConfig config;
  config.slot_seconds = opt.slot;
  config.seed = opt.seed;
  config.threads = opt.threads;
  if (opt.gpus > 0) config.resource_dims = 3;
  if (opt.failure_mtbf > 0.0) {
    config.failures.enabled = true;
    config.failures.mean_time_to_failure_seconds = opt.failure_mtbf;
    config.failures.mean_repair_seconds = opt.failure_repair;
  }
  if (opt.rack_mttf > 0.0) {
    config.faults.rack.enabled = true;
    config.faults.rack.time_to_failure.mean_seconds = opt.rack_mttf;
    config.faults.rack.repair.mean_seconds = opt.rack_repair;
  }
  if (opt.fail_slow_onset > 0.0) {
    config.faults.fail_slow.enabled = true;
    config.faults.fail_slow.time_to_onset.mean_seconds = opt.fail_slow_onset;
    config.faults.fail_slow.recovery.mean_seconds = opt.fail_slow_recovery;
    config.faults.fail_slow.slowdown_factor = opt.fail_slow_factor;
  }
  if (opt.copy_fault_mean > 0.0) {
    config.faults.copy.enabled = true;
    config.faults.copy.inter_fault.mean_seconds = opt.copy_fault_mean;
  }
  if (opt.weibull_shape > 0.0) {
    config.faults.crash_dist = FaultDelayDist::kWeibull;
    config.faults.crash_weibull_shape = opt.weibull_shape;
    for (FaultDelaySpec* spec :
         {&config.faults.rack.time_to_failure, &config.faults.rack.repair,
          &config.faults.fail_slow.time_to_onset, &config.faults.fail_slow.recovery,
          &config.faults.copy.inter_fault}) {
      spec->dist = FaultDelayDist::kWeibull;
      spec->weibull_shape = opt.weibull_shape;
    }
  }
  // Fail fast with a parameter-naming message instead of deep inside run().
  try {
    config.validate();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (opt.compare) {
    if (!opt.trace_out.empty() || !opt.log_out.empty() || opt.flight_recorder > 0 ||
        opt.verify_replay || !opt.verify_log.empty()) {
      std::cerr << "note: recorder/verify flags are ignored with --compare\n";
    }
    ComparisonSpec spec;
    spec.cluster = cluster;
    spec.config = config;
    spec.jobs = jobs;
    std::vector<ComparisonEntry> entries;
    for (const char* key :
         {"capacity", "drf", "tetris", "carbyne", "srpt", "svf", "dollymp0", "dollymp2"}) {
      entries.push_back({key, [key] {
                           Options o;
                           o.scheduler = key;
                           return make_policy(o);
                         }});
    }
    ThreadPool pool;
    const auto results = run_comparison(spec, entries, &pool);
    std::vector<RunSummary> summaries;
    summaries.reserve(results.size());
    for (const auto& r : results) summaries.push_back(summarize(r));
    std::cout << render_summaries(summaries);
    std::cout << render_control_plane(summaries);
    return 0;
  }

  // Replay verification: run the config twice (or once against a saved
  // log), compare the flight-recorder streams, and report the first
  // divergent record decoded on both sides.  Exit 1 on any divergence so CI
  // can gate on determinism.
  if (opt.verify_replay || !opt.verify_log.empty()) {
    const SchedulerFactory factory = [&opt] { return make_policy(opt); };
    bool identical = true;
    if (opt.verify_replay) {
      const DivergenceReport report = verify_replay(cluster, config, jobs, factory);
      std::cout << "verify-replay [" << opt.scheduler << "]: " << report.to_string()
                << "\n";
      identical = identical && report.identical;
    }
    if (!opt.verify_log.empty()) {
      const TraceLog reference = load_log(opt.verify_log);
      const DivergenceReport report =
          verify_against_log(cluster, config, jobs, factory, reference.records);
      std::cout << "verify-log [" << opt.verify_log << "]: " << report.to_string()
                << "\n";
      identical = identical && report.identical;
    }
    return identical ? 0 : 1;
  }

  // Trace export wants the whole stream; the bounded ring is the always-on
  // "tell me what just happened" mode for long runs.
  std::unique_ptr<Recorder> recorder;
  if (!opt.trace_out.empty() || !opt.log_out.empty()) {
    recorder = std::make_unique<Recorder>();
  } else if (opt.flight_recorder > 0) {
    recorder = std::make_unique<Recorder>(opt.flight_recorder);
  }
  config.recorder = recorder.get();

  auto scheduler = make_policy(opt);
  SimResult result;
  try {
    result = simulate(cluster, config, jobs, *scheduler);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    if (recorder != nullptr && recorder->records_written() > 0) {
      std::cerr << "flight recorder dump (newest " << recorder->size() << " of "
                << recorder->records_written() << " records):\n";
      recorder->dump(std::cerr);
    }
    return 3;
  }
  const RunSummary summary = summarize(result);

  if (opt.quiet) {
    std::cout << result.scheduler << " jobs=" << summary.jobs
              << " mean_flow_s=" << summary.mean_flowtime
              << " makespan_s=" << summary.makespan << "\n";
  } else {
    std::cout << render_summaries({summary});
    std::cout << render_control_plane({summary});
    std::cout << render_cdf_rows("flowtime_s", flowtime_cdf(result));
    std::cout << render_cdf_rows("running_s", running_time_cdf(result));
  }
  if (!opt.out.empty()) {
    save_results(result, opt.out);
    std::cout << "wrote per-job records to " << opt.out << "\n";
  }
  if (recorder != nullptr && !opt.trace_out.empty()) {
    ChromeTraceOptions trace_options;
    trace_options.slot_seconds = config.slot_seconds;
    std::ofstream trace_file(opt.trace_out, std::ios::binary);
    if (!trace_file ||
        !(trace_file << chrome_trace_json(recorder->snapshot(), trace_options))) {
      std::cerr << "cannot write " << opt.trace_out << "\n";
      return 3;
    }
    std::cout << "wrote Chrome trace JSON to " << opt.trace_out
              << " (open at https://ui.perfetto.dev)\n";
  }
  if (recorder != nullptr && !opt.log_out.empty()) {
    save_log(opt.log_out, recorder->snapshot(), config.slot_seconds,
             result.stats.threads_resolved);
    std::cout << "wrote flight log (" << recorder->records_written() << " records) to "
              << opt.log_out << "\n";
  }
  return 0;
}
