// dollymp_service — driver for the long-running service layer.
//
// Runs a streaming simulation (unbounded open-loop arrivals) instead of a
// finite batch, with verifiable checkpoint/restore and copy-on-write
// what-if forks.  Two modes:
//
//   * One-shot: advance a session to --horizon slots, optionally writing
//     periodic and/or final checkpoints, and print a status summary.
//   * Scripted/REPL (--script FILE or --repl): drive the session with
//     commands, fork divergent futures, advance them in parallel on the
//     thread pool, and emit byte-deterministic comparison JSON.
//
//   dollymp_service [options]
//     --cluster paper30|google:N|uniform:N:CPU:MEM   (default google:100)
//     --policy NAME         capacity|hopper|drf|tetris|carbyne|srpt|svf|
//                           dollymp0-3                (default dollymp2)
//     --rate R              mean arrivals per second   (default 0.05)
//     --diurnal AMP[:PERIOD]  sinusoidal rate modulation (amplitude in
//                           [0,1); period seconds, default 86400)
//     --flash MULT:START:DURATION  flash-crowd surge (multiplier >= 1)
//     --mean-gb X           mean job input size        (default 2)
//     --seed S              simulation seed            (default 1)
//     --arrival-seed S      arrival stream seed        (default 1)
//     --slot SECONDS        slot length                (default 5)
//     --threads N           deterministic parallel core width
//     --pump SLOTS          arrival pump chunk         (default 256)
//     --failures MTBF:REPAIR  enable machine failures (seconds)
//     --horizon SLOTS       one-shot run length        (default 2000)
//     --checkpoint FILE     write a checkpoint at the horizon
//     --checkpoint-every SECONDS  periodic checkpoints to FILE.<n>
//     --restore FILE        restore the session from a checkpoint first
//     --script FILE         run commands from FILE
//     --repl                read commands from stdin
//     --json                print the final status as JSON
//     --help
//
// Overload protection (DESIGN.md §4.9; all off by default):
//     --admission           enable the admission gate (token bucket +
//                           watermark shedding)
//     --bucket RATE:BURST   token-bucket rate cap (jobs/second, burst jobs)
//     --watermarks HIGH:LOW live-jobs-per-live-server shed watermarks
//     --shed-fraction F     fraction of sheddable arrivals dropped while
//                           latched (error-diffused), in [0,1]
//     --tenants N:PROTECTED tenant classes (job id % N) and how many top
//                           classes ride through watermark shedding
//     --governor            enable the SLO degradation ladder
//     --slo-p99 SECONDS     p99 response-time target (0 = load-only)
//     --slo-window N        sliding-window sample count
//
// Supervised crash-safe mode:
//     --supervise           run the session in a supervised child process,
//                           auto-restarting from the newest valid snapshot
//     --snapshot-base PATH  rotation base (PATH.latest / PATH.prev /
//                           PATH.progress); required with --supervise
//     --snapshot-every SLOTS  snapshot stride (multiple of --pump;
//                           default 4 * pump)
//     --max-restarts N      restart budget             (default 8)
//     --watchdog SECONDS    no-progress watchdog       (default 30)
//     --resume-from FILE    first child resumes from this snapshot
//                           (quarantined snapshots are refused)
//     --kill-at S1,S2,...   test hook: child k SIGKILLs itself at slot Sk
//
// Script commands:
//     run SLOTS             advance the parent session
//     status                print a status line for every session
//     checkpoint PATH       write the parent's checkpoint
//     fork NAME [policy=NAME] [quarantine=ID,ID,...]
//                           create a what-if fork of the parent
//     advance SLOTS         advance parent and all forks in parallel
//     compare               print comparison JSON (parent + forks)
//     quit
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/cli.h"
#include "dollymp/common/thread_pool.h"
#include "dollymp/service/session.h"
#include "dollymp/service/supervisor.h"

namespace {

using namespace dollymp;

struct Options {
  std::string cluster = "google:100";
  std::string policy = "dollymp2";
  double rate = 0.05;
  double diurnal_amplitude = 0.0;
  double diurnal_period = 86400.0;
  double flash_multiplier = 1.0;
  double flash_start = -1.0;
  double flash_duration = 0.0;
  double mean_gb = 2.0;
  std::uint64_t seed = 1;
  std::uint64_t arrival_seed = 1;
  double slot = 5.0;
  int threads = 1;
  SimTime pump = 256;
  double failure_mtbf = 0.0;
  double failure_repair = 0.0;
  SimTime horizon = 2000;
  std::string checkpoint;
  double checkpoint_every = -1.0;
  std::string restore;
  std::string script;
  bool repl = false;
  bool json = false;
  // Overload protection.
  bool admission = false;
  double bucket_rate = 0.0;
  double bucket_burst = 32.0;
  double high_watermark = 4.0;
  double low_watermark = 2.0;
  double shed_fraction = 1.0;
  int tenant_classes = 4;
  int protected_classes = 1;
  bool governor = false;
  double slo_p99 = 0.0;
  int slo_window = 512;
  // Supervised mode.
  bool supervise = false;
  std::string snapshot_base;
  SimTime snapshot_every = 0;  // 0: default to 4 * pump
  int max_restarts = 8;
  double watchdog = 30.0;
  std::string resume_from;
  std::vector<SimTime> kill_at;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: dollymp_service [--cluster paper30|google:N|uniform:N:CPU:MEM]\n"
      "                       [--policy NAME] [--rate R] [--diurnal AMP[:PERIOD]]\n"
      "                       [--flash MULT:START:DURATION] [--mean-gb X]\n"
      "                       [--seed S] [--arrival-seed S] [--slot SECONDS]\n"
      "                       [--threads N] [--pump SLOTS] [--failures MTBF:REPAIR]\n"
      "                       [--horizon SLOTS] [--checkpoint FILE]\n"
      "                       [--checkpoint-every SECONDS] [--restore FILE]\n"
      "                       [--script FILE] [--repl] [--json]\n"
      "                       [--admission] [--bucket RATE:BURST]\n"
      "                       [--watermarks HIGH:LOW] [--shed-fraction F]\n"
      "                       [--tenants N:PROTECTED] [--governor]\n"
      "                       [--slo-p99 SECONDS] [--slo-window N]\n"
      "                       [--supervise] [--snapshot-base PATH]\n"
      "                       [--snapshot-every SLOTS] [--max-restarts N]\n"
      "                       [--watchdog SECONDS] [--resume-from FILE]\n"
      "                       [--kill-at S1,S2,...]\n"
      "\n"
      "script commands: run N | status | checkpoint PATH |\n"
      "                 fork NAME [policy=P] [quarantine=ID,ID,...] |\n"
      "                 advance N | compare | quit\n";
  std::exit(code);
}

const std::vector<std::string> kKnownFlags = {
    "--help",      "--cluster",  "--policy",       "--rate",
    "--diurnal",   "--flash",    "--mean-gb",      "--seed",
    "--arrival-seed", "--slot",  "--threads",      "--pump",
    "--failures",  "--horizon",  "--checkpoint",   "--checkpoint-every",
    "--restore",   "--script",   "--repl",         "--json",
    "--admission", "--bucket",   "--watermarks",   "--shed-fraction",
    "--tenants",   "--governor", "--slo-p99",      "--slo-window",
    "--supervise", "--snapshot-base", "--snapshot-every", "--max-restarts",
    "--watchdog",  "--resume-from",   "--kill-at"};

Options parse_options(int argc, char** argv) {
  Options opt;
  const std::vector<std::string> args = cli::normalize_args(argc, argv);
  const int n = static_cast<int>(args.size());
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= n) {
      std::cerr << "missing value for " << args[static_cast<std::size_t>(i)] << "\n";
      usage(2);
    }
    return args[static_cast<std::size_t>(++i)];
  };
  for (int i = 0; i < n; ++i) {
    const std::string& arg = args[static_cast<std::size_t>(i)];
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--cluster") opt.cluster = need_value(i);
    else if (arg == "--policy") opt.policy = need_value(i);
    else if (arg == "--rate") opt.rate = std::stod(need_value(i));
    else if (arg == "--diurnal") {
      const auto parts = cli::split(need_value(i), ':');
      opt.diurnal_amplitude = std::stod(parts[0]);
      if (parts.size() > 1) opt.diurnal_period = std::stod(parts[1]);
    } else if (arg == "--flash") {
      const auto parts = cli::split(need_value(i), ':');
      if (parts.size() != 3) {
        std::cerr << "--flash wants MULT:START:DURATION\n";
        usage(2);
      }
      opt.flash_multiplier = std::stod(parts[0]);
      opt.flash_start = std::stod(parts[1]);
      opt.flash_duration = std::stod(parts[2]);
    } else if (arg == "--mean-gb") opt.mean_gb = std::stod(need_value(i));
    else if (arg == "--seed") opt.seed = std::stoull(need_value(i));
    else if (arg == "--arrival-seed") opt.arrival_seed = std::stoull(need_value(i));
    else if (arg == "--slot") opt.slot = std::stod(need_value(i));
    else if (arg == "--threads") opt.threads = std::stoi(need_value(i));
    else if (arg == "--pump") opt.pump = std::stoll(need_value(i));
    else if (arg == "--failures") {
      const auto parts = cli::split(need_value(i), ':');
      if (parts.size() != 2) {
        std::cerr << "--failures wants MTBF:REPAIR seconds\n";
        usage(2);
      }
      opt.failure_mtbf = std::stod(parts[0]);
      opt.failure_repair = std::stod(parts[1]);
    } else if (arg == "--horizon") opt.horizon = std::stoll(need_value(i));
    else if (arg == "--checkpoint") opt.checkpoint = need_value(i);
    else if (arg == "--checkpoint-every") opt.checkpoint_every = std::stod(need_value(i));
    else if (arg == "--restore") opt.restore = need_value(i);
    else if (arg == "--script") opt.script = need_value(i);
    else if (arg == "--repl") opt.repl = true;
    else if (arg == "--json") opt.json = true;
    else if (arg == "--admission") opt.admission = true;
    else if (arg == "--bucket") {
      const auto parts = cli::split(need_value(i), ':');
      if (parts.size() != 2) {
        std::cerr << "--bucket wants RATE:BURST\n";
        usage(2);
      }
      opt.bucket_rate = std::stod(parts[0]);
      opt.bucket_burst = std::stod(parts[1]);
    } else if (arg == "--watermarks") {
      const auto parts = cli::split(need_value(i), ':');
      if (parts.size() != 2) {
        std::cerr << "--watermarks wants HIGH:LOW\n";
        usage(2);
      }
      opt.high_watermark = std::stod(parts[0]);
      opt.low_watermark = std::stod(parts[1]);
    } else if (arg == "--shed-fraction") opt.shed_fraction = std::stod(need_value(i));
    else if (arg == "--tenants") {
      const auto parts = cli::split(need_value(i), ':');
      if (parts.size() != 2) {
        std::cerr << "--tenants wants N:PROTECTED\n";
        usage(2);
      }
      opt.tenant_classes = std::stoi(parts[0]);
      opt.protected_classes = std::stoi(parts[1]);
    } else if (arg == "--governor") opt.governor = true;
    else if (arg == "--slo-p99") opt.slo_p99 = std::stod(need_value(i));
    else if (arg == "--slo-window") opt.slo_window = std::stoi(need_value(i));
    else if (arg == "--supervise") opt.supervise = true;
    else if (arg == "--snapshot-base") opt.snapshot_base = need_value(i);
    else if (arg == "--snapshot-every") opt.snapshot_every = std::stoll(need_value(i));
    else if (arg == "--max-restarts") opt.max_restarts = std::stoi(need_value(i));
    else if (arg == "--watchdog") opt.watchdog = std::stod(need_value(i));
    else if (arg == "--resume-from") opt.resume_from = need_value(i);
    else if (arg == "--kill-at") {
      for (const auto& slot : cli::split(need_value(i), ',')) {
        opt.kill_at.push_back(std::stoll(slot));
      }
    } else {
      std::cerr << cli::unknown_flag_message(arg, kKnownFlags) << "\n";
      usage(2);
    }
  }
  return opt;
}

Cluster make_cluster(const std::string& spec) {
  if (spec == "paper30") return Cluster::paper30();
  const auto parts = cli::split(spec, ':');
  if (parts.size() == 2 && parts[0] == "google") {
    return Cluster::google_like(static_cast<std::size_t>(std::stoul(parts[1])));
  }
  if (parts.size() == 4 && parts[0] == "uniform") {
    return Cluster::uniform(static_cast<std::size_t>(std::stoul(parts[1])),
                            {std::stod(parts[2]), std::stod(parts[3])});
  }
  std::cerr << "unknown cluster spec '" << spec << "'\n";
  usage(2);
}

ServiceConfig make_service_config(const Options& opt) {
  ServiceConfig config;
  config.sim.seed = opt.seed;
  config.sim.slot_seconds = opt.slot;
  config.sim.threads = opt.threads;
  if (opt.failure_mtbf > 0.0) {
    config.sim.failures.enabled = true;
    config.sim.failures.mean_time_to_failure_seconds = opt.failure_mtbf;
    config.sim.failures.mean_repair_seconds = opt.failure_repair;
  }
  config.arrivals.rate_per_second = opt.rate;
  config.arrivals.diurnal_amplitude = opt.diurnal_amplitude;
  config.arrivals.diurnal_period_seconds = opt.diurnal_period;
  config.arrivals.flash_multiplier = opt.flash_multiplier;
  config.arrivals.flash_start_seconds = opt.flash_start;
  config.arrivals.flash_duration_seconds = opt.flash_duration;
  config.arrivals.mean_input_gb = opt.mean_gb;
  config.arrivals.seed = opt.arrival_seed;
  config.policy = opt.policy;
  config.pump_slots = opt.pump;
  config.checkpoint_interval_seconds = opt.checkpoint_every;
  config.overload.admission_enabled = opt.admission;
  config.overload.bucket_rate_per_second = opt.bucket_rate;
  config.overload.bucket_burst = opt.bucket_burst;
  config.overload.high_watermark = opt.high_watermark;
  config.overload.low_watermark = opt.low_watermark;
  config.overload.shed_fraction = opt.shed_fraction;
  config.overload.num_tenant_classes = opt.tenant_classes;
  config.overload.protected_classes = opt.protected_classes;
  config.overload.governor_enabled = opt.governor;
  config.overload.slo_target_p99_seconds = opt.slo_p99;
  config.overload.slo_window_size = opt.slo_window;
  return config;
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

/// Fixed-format double so comparison JSON is byte-deterministic.
std::string fixed6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

struct Fleet {
  std::unique_ptr<Session> parent;
  std::vector<std::pair<std::string, std::unique_ptr<Session>>> forks;
};

std::string session_json(const std::string& name, const Session& session) {
  const StreamTotals& totals = session.totals();
  const double mean_response =
      totals.jobs_completed > 0
          ? totals.response_seconds_sum / static_cast<double>(totals.jobs_completed)
          : 0.0;
  std::ostringstream os;
  os << "{\"name\":\"" << name << "\",\"policy\":\"" << session.policy_name()
     << "\",\"clock\":" << session.clock() << ",\"live_jobs\":" << session.live_jobs()
     << ",\"jobs_ingested\":" << totals.jobs_ingested
     << ",\"jobs_completed\":" << totals.jobs_completed
     << ",\"mean_response_s\":" << fixed6(mean_response)
     << ",\"clones_launched\":" << totals.clones_launched
     << ",\"stream_records\":" << session.records_written()
     << ",\"stream_hash\":\"" << hex64(session.stream_hash()) << "\"}";
  return os.str();
}

void print_compare(const Fleet& fleet, std::ostream& os) {
  os << "{\"clock\":" << fleet.parent->clock() << ",\"sessions\":[";
  os << session_json("parent", *fleet.parent);
  for (const auto& [name, session] : fleet.forks) {
    os << "," << session_json(name, *session);
  }
  os << "]}\n";
}

void print_status(const Fleet& fleet, std::ostream& os) {
  auto line = [&os](const std::string& name, const Session& s) {
    const StreamTotals& totals = s.totals();
    os << name << " [" << s.policy_name() << "] clock=" << s.clock()
       << " live=" << s.live_jobs() << " ingested=" << totals.jobs_ingested
       << " completed=" << totals.jobs_completed
       << " segments=" << s.spec_segments() << " hash=" << hex64(s.stream_hash())
       << "\n";
  };
  line("parent", *fleet.parent);
  for (const auto& [name, session] : fleet.forks) line(name, *session);
}

/// Advance the parent and every fork to `target` slots, each on its own
/// pool worker.  Sessions share only immutable spec segments, so the runs
/// are independent; results stay deterministic because each session's
/// stream depends only on its own state.
void advance_all(Fleet& fleet, SimTime target, ThreadPool& pool) {
  std::vector<std::future<void>> futures;
  futures.push_back(pool.submit([&fleet, target] { fleet.parent->run_until(target); }));
  for (auto& [name, session] : fleet.forks) {
    Session* raw = session.get();
    futures.push_back(pool.submit([raw, target] { raw->run_until(target); }));
  }
  for (auto& future : futures) future.get();
}

int run_script(Fleet& fleet, std::istream& in, bool echo) {
  ThreadPool pool;
  std::string line;
  while (std::getline(in, line)) {
    // Strip comments and blank lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string command;
    if (!(ls >> command)) continue;
    if (echo) std::cout << "> " << line << "\n";
    try {
      if (command == "quit" || command == "exit") break;
      if (command == "run") {
        SimTime slots = 0;
        ls >> slots;
        fleet.parent->run_until(fleet.parent->clock() + slots);
      } else if (command == "advance") {
        SimTime slots = 0;
        ls >> slots;
        advance_all(fleet, fleet.parent->clock() + slots, pool);
      } else if (command == "status") {
        print_status(fleet, std::cout);
      } else if (command == "checkpoint") {
        std::string path;
        ls >> path;
        fleet.parent->checkpoint(path);
        std::cout << "wrote checkpoint " << path << "\n";
      } else if (command == "fork") {
        std::string name;
        ls >> name;
        if (name.empty()) throw std::invalid_argument("fork wants a name");
        Session::ForkOptions fork_options;
        std::string option;
        while (ls >> option) {
          if (option.rfind("policy=", 0) == 0) {
            fork_options.policy = option.substr(7);
          } else if (option.rfind("quarantine=", 0) == 0) {
            for (const auto& id : cli::split(option.substr(11), ',')) {
              fork_options.quarantine.push_back(std::stoi(id));
            }
          } else {
            throw std::invalid_argument("unknown fork option '" + option + "'");
          }
        }
        fleet.forks.emplace_back(name, fleet.parent->fork(fork_options));
        std::cout << "forked " << name << " at clock " << fleet.parent->clock()
                  << "\n";
      } else if (command == "compare") {
        print_compare(fleet, std::cout);
      } else {
        throw std::invalid_argument("unknown command '" + command + "'");
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      if (!echo) return 3;  // scripts abort; the interactive REPL continues
    }
  }
  return 0;
}

/// Supervised one-shot: run the session in a babysat child process and
/// print the final progress as one deterministic JSON line.  The JSON is
/// byte-identical for any --kill-at schedule, which is what the CI recovery
/// gate compares.
int run_supervise(const Options& opt, const ServiceConfig& config,
                  const Cluster& cluster) {
  if (opt.snapshot_base.empty()) {
    std::cerr << "--supervise requires --snapshot-base PATH\n";
    return 2;
  }
  SupervisorOptions sup;
  sup.snapshot_base = opt.snapshot_base;
  sup.horizon_slots = opt.horizon;
  sup.checkpoint_stride_slots =
      opt.snapshot_every > 0 ? opt.snapshot_every : 4 * opt.pump;
  sup.max_restarts = opt.max_restarts;
  sup.watchdog_seconds = opt.watchdog;
  sup.resume_from = opt.resume_from;
  sup.kill_at_slots = opt.kill_at;
  const SupervisorResult result = run_supervised(cluster, config, sup);
  std::cout << "{\"clock\":" << result.final_clock << ",\"stream_hash\":\""
            << hex64(result.stream_hash)
            << "\",\"stream_records\":" << result.records_written
            << ",\"jobs_ingested\":" << result.jobs_ingested
            << ",\"jobs_completed\":" << result.jobs_completed
            << ",\"arrivals_shed\":" << result.arrivals_shed
            << ",\"restarts\":" << result.restarts
            << ",\"snapshots_quarantined\":" << result.snapshots_quarantined
            << "}\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const ServiceConfig config = make_service_config(opt);
  const Cluster cluster = make_cluster(opt.cluster);

  if (opt.supervise) {
    try {
      return run_supervise(opt, config, cluster);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 3;
    }
  }

  Fleet fleet;
  try {
    if (!opt.restore.empty()) {
      fleet.parent = Session::restore(cluster, config, opt.restore);
      std::cerr << "restored from " << opt.restore << " at clock "
                << fleet.parent->clock() << "\n";
    } else {
      fleet.parent = std::make_unique<Session>(cluster, config);
    }

    if (!opt.script.empty()) {
      std::ifstream file(opt.script);
      if (!file) {
        std::cerr << "cannot open script " << opt.script << "\n";
        return 2;
      }
      return run_script(fleet, file, /*echo=*/true);
    }
    if (opt.repl) return run_script(fleet, std::cin, /*echo=*/false);

    // One-shot: advance to the horizon in pump-sized strides, cutting
    // periodic checkpoints when asked.
    int checkpoint_index = 0;
    double next_checkpoint_seconds =
        opt.checkpoint_every > 0.0 ? opt.checkpoint_every : -1.0;
    while (fleet.parent->clock() < opt.horizon) {
      const SimTime stride =
          std::min<SimTime>(opt.horizon, fleet.parent->clock() + config.pump_slots);
      fleet.parent->run_until(stride);
      if (next_checkpoint_seconds > 0.0 && !opt.checkpoint.empty() &&
          static_cast<double>(fleet.parent->clock()) * config.sim.slot_seconds >=
              next_checkpoint_seconds) {
        const std::string path =
            opt.checkpoint + "." + std::to_string(checkpoint_index++);
        fleet.parent->checkpoint(path);
        std::cerr << "wrote checkpoint " << path << "\n";
        next_checkpoint_seconds += opt.checkpoint_every;
      }
    }
    if (!opt.checkpoint.empty() && opt.checkpoint_every <= 0.0) {
      fleet.parent->checkpoint(opt.checkpoint);
      std::cerr << "wrote checkpoint " << opt.checkpoint << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }

  if (opt.json) {
    print_compare(fleet, std::cout);
  } else {
    print_status(fleet, std::cout);
  }
  return 0;
}
