// dollymp_chaos — the chaos invariant harness.
//
// Runs a scenario matrix (fault class x resilience policy x seed) against a
// workload and asserts hard invariants after every run:
//
//   1. completion    every job in the workload finished
//   2. no-leak       no CPU/memory/copy allocation survives the last job
//   3. conservation  copies launched == copies finished + copies killed
//   4. bounded       makespan <= healthy-twin makespan * factor + slack
//   5. determinism   a paired re-run produces a bit-identical record stream
//
// Any violated invariant fails the scenario; any failed scenario makes the
// process exit 1, so CI can gate on the whole matrix.  A per-scenario
// report (pass/fail per invariant plus availability counters) is printed
// and optionally written to a file for artifact upload.
//
//   dollymp_chaos [options]
//     --inventory paper30|google|google-trace   cluster shape (default paper30)
//     --servers N          server count for --inventory
//     --jobs N             trace-model jobs per scenario        (default 40)
//     --gap SECONDS        mean Poisson inter-arrival gap       (default 10)
//     --slot SECONDS       slot length                          (default 5)
//     --seeds S1,S2,...    environment seeds                    (default 1,2)
//     --classes LIST       comma list of crash,rack,failslow,copyfault,all
//                          (default: all five entries)
//     --policies LIST      comma list of base,resilient         (default both)
//     --makespan-factor F  invariant 4 multiplier               (default 50)
//     --makespan-slack S   invariant 4 additive slack, seconds  (default 1800)
//     --out FILE           also write the report to FILE
//     --quiet              per-scenario lines only on failure
//     --help
//
// Flags also accept --flag=value.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/cli.h"
#include "dollymp/obs/replay.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

namespace {

using namespace dollymp;

struct Options {
  std::string inventory = "paper30";
  int servers = 0;
  int jobs = 40;
  double gap = 10.0;
  double slot = 5.0;
  std::vector<std::uint64_t> seeds = {1, 2};
  std::vector<std::string> classes = {"crash", "rack", "failslow", "copyfault", "all"};
  std::vector<std::string> policies = {"base", "resilient"};
  double makespan_factor = 50.0;
  double makespan_slack = 1800.0;
  std::string out;
  bool quiet = false;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: dollymp_chaos [--inventory paper30|google|google-trace] [--servers N]\n"
      "                     [--jobs N] [--gap SECONDS] [--slot SECONDS]\n"
      "                     [--seeds S1,S2,...]\n"
      "                     [--classes crash,rack,failslow,copyfault,all]\n"
      "                     [--policies base,resilient]\n"
      "                     [--makespan-factor F] [--makespan-slack SECONDS]\n"
      "                     [--out FILE] [--quiet]\n";
  std::exit(code);
}

using cli::split;

const std::vector<std::string> kKnownFlags = {
    "--help",      "--inventory",       "--servers",        "--jobs",
    "--gap",       "--slot",            "--seeds",          "--classes",
    "--policies",  "--makespan-factor", "--makespan-slack", "--out",
    "--quiet"};

Options parse_options(int argc, char** argv) {
  Options opt;
  const std::vector<std::string> args = cli::normalize_args(argc, argv);
  const int n = static_cast<int>(args.size());
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= n) {
      std::cerr << "missing value for " << args[static_cast<std::size_t>(i)] << "\n";
      usage(2);
    }
    return args[static_cast<std::size_t>(++i)];
  };
  for (int i = 0; i < n; ++i) {
    const std::string& arg = args[static_cast<std::size_t>(i)];
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--inventory") opt.inventory = need_value(i);
    else if (arg == "--servers") opt.servers = std::stoi(need_value(i));
    else if (arg == "--jobs") opt.jobs = std::stoi(need_value(i));
    else if (arg == "--gap") opt.gap = std::stod(need_value(i));
    else if (arg == "--slot") opt.slot = std::stod(need_value(i));
    else if (arg == "--seeds") {
      opt.seeds.clear();
      for (const auto& s : split(need_value(i), ',')) opt.seeds.push_back(std::stoull(s));
    } else if (arg == "--classes") opt.classes = split(need_value(i), ',');
    else if (arg == "--policies") opt.policies = split(need_value(i), ',');
    else if (arg == "--makespan-factor") opt.makespan_factor = std::stod(need_value(i));
    else if (arg == "--makespan-slack") opt.makespan_slack = std::stod(need_value(i));
    else if (arg == "--out") opt.out = need_value(i);
    else if (arg == "--quiet") opt.quiet = true;
    else {
      std::cerr << cli::unknown_flag_message(arg, kKnownFlags) << "\n";
      usage(2);
    }
  }
  if (opt.seeds.empty() || opt.classes.empty() || opt.policies.empty()) {
    std::cerr << "--seeds/--classes/--policies must be non-empty\n";
    usage(2);
  }
  return opt;
}

Cluster make_cluster(const Options& opt) {
  const auto servers = static_cast<std::size_t>(opt.servers);
  if (opt.inventory == "paper30") return Cluster::paper30();
  if (opt.inventory == "google") return Cluster::google_like(servers > 0 ? servers : 100);
  if (opt.inventory == "google-trace") {
    return servers > 0 ? Cluster::google_trace(servers) : Cluster::google_trace();
  }
  std::cerr << "unknown inventory '" << opt.inventory << "'\n";
  usage(2);
}

/// Enable one fault class (or all of them) on top of a healthy config.
/// Rates are aggressive relative to typical task durations so every
/// scenario actually exercises the injected class.
void apply_fault_class(SimConfig& config, const std::string& cls) {
  if (cls == "crash" || cls == "all") {
    config.failures.enabled = true;
    config.failures.mean_time_to_failure_seconds = 600.0;
    config.failures.mean_repair_seconds = 120.0;
  }
  if (cls == "rack" || cls == "all") {
    config.faults.rack.enabled = true;
    config.faults.rack.time_to_failure.mean_seconds = 1500.0;
    config.faults.rack.repair.mean_seconds = 200.0;
  }
  if (cls == "failslow" || cls == "all") {
    config.faults.fail_slow.enabled = true;
    config.faults.fail_slow.slowdown_factor = 3.0;
    config.faults.fail_slow.time_to_onset.mean_seconds = 600.0;
    config.faults.fail_slow.recovery.mean_seconds = 300.0;
  }
  if (cls == "copyfault" || cls == "all") {
    config.faults.copy.enabled = true;
    config.faults.copy.inter_fault.mean_seconds = 120.0;
  }
  if (cls != "crash" && cls != "rack" && cls != "failslow" && cls != "copyfault" &&
      cls != "all") {
    std::cerr << "unknown fault class '" << cls << "'\n";
    usage(2);
  }
}

SchedulerFactory make_factory(const std::string& policy) {
  if (policy == "base") {
    return [] { return std::make_unique<DollyMPScheduler>(); };
  }
  if (policy == "resilient") {
    DollyMPConfig config;
    config.resilience.enabled = true;
    return [config] { return std::make_unique<DollyMPScheduler>(config); };
  }
  std::cerr << "unknown policy '" << policy << "'\n";
  usage(2);
}

struct ScenarioReport {
  std::string name;
  bool completion = false;
  bool no_leak = false;
  bool conservation = false;
  bool bounded = false;
  bool deterministic = false;
  double makespan = 0.0;
  double healthy_makespan = 0.0;
  SimStats stats;
  std::string detail;

  [[nodiscard]] bool passed() const {
    return completion && no_leak && conservation && bounded && deterministic;
  }
};

std::string render(const ScenarioReport& r) {
  auto mark = [](bool ok) { return ok ? "ok" : "FAIL"; };
  std::ostringstream os;
  os << (r.passed() ? "PASS " : "FAIL ") << r.name
     << "  completion=" << mark(r.completion) << " no-leak=" << mark(r.no_leak)
     << " conservation=" << mark(r.conservation) << " bounded=" << mark(r.bounded)
     << " determinism=" << mark(r.deterministic) << "  makespan=" << r.makespan
     << "s (healthy " << r.healthy_makespan
     << "s) fault-kills=" << r.stats.copies_killed_by_faults
     << " retries=" << r.stats.retries_issued
     << " quarantines=" << r.stats.servers_quarantined;
  if (!r.detail.empty()) os << "\n       " << r.detail;
  return os.str();
}

ScenarioReport run_scenario(const Cluster& cluster, const SimConfig& faulty_config,
                            double healthy_makespan, const std::vector<JobSpec>& jobs,
                            const std::string& policy, const Options& opt) {
  ScenarioReport report;
  const SchedulerFactory factory = make_factory(policy);
  std::ostringstream detail;

  const auto scheduler = factory();
  const SimResult result = simulate(cluster, faulty_config, jobs, *scheduler);
  report.makespan = result.makespan_seconds;
  report.healthy_makespan = healthy_makespan;
  report.stats = result.stats;

  // 1. Every job completes.  The simulator only returns when all jobs are
  // done, but verify from the records rather than trusting the loop exit.
  report.completion = result.jobs.size() == jobs.size();
  for (const auto& j : result.jobs) {
    if (j.finish_seconds < j.arrival_seconds || j.first_start_seconds < 0.0) {
      report.completion = false;
      detail << "job " << j.id << " finish=" << j.finish_seconds << " arrival="
             << j.arrival_seconds << "; ";
    }
  }
  if (result.jobs.size() != jobs.size()) {
    detail << "finished " << result.jobs.size() << "/" << jobs.size() << " jobs; ";
  }

  // 2. No leaked allocations at run end.
  report.no_leak = result.stats.leaked_cpu == 0.0 && result.stats.leaked_mem == 0.0 &&
                   result.stats.leaked_active_copies == 0;
  if (!report.no_leak) {
    detail << "leaked cpu=" << result.stats.leaked_cpu
           << " mem=" << result.stats.leaked_mem
           << " copies=" << result.stats.leaked_active_copies << "; ";
  }

  // 3. Copy conservation: every launched copy either finished or was killed.
  report.conservation = result.total_copies_launched ==
                        result.stats.copies_finished + result.stats.copies_killed;
  if (!report.conservation) {
    detail << "launched=" << result.total_copies_launched
           << " finished=" << result.stats.copies_finished
           << " killed=" << result.stats.copies_killed << "; ";
  }

  // 4. Bounded degradation versus the healthy twin.
  const double bound = healthy_makespan * opt.makespan_factor + opt.makespan_slack;
  report.bounded = result.makespan_seconds <= bound;
  if (!report.bounded) {
    detail << "makespan " << result.makespan_seconds << "s exceeds bound " << bound
           << "s; ";
  }

  // 5. Replay determinism: the same config twice must produce a
  // bit-identical flight-recorder stream.
  const DivergenceReport replay = verify_replay(cluster, faulty_config, jobs, factory);
  report.deterministic = replay.identical;
  if (!replay.identical) detail << "replay: " << replay.to_string() << "; ";

  report.detail = detail.str();
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const Cluster cluster = make_cluster(opt);

  std::ostringstream report_text;
  bool all_passed = true;
  int scenario_count = 0;

  for (const std::uint64_t seed : opt.seeds) {
    TraceModel model({}, seed);
    std::vector<JobSpec> jobs = model.sample_jobs(opt.jobs);
    assign_poisson_arrivals(jobs, opt.gap, seed + 1);

    SimConfig healthy;
    healthy.slot_seconds = opt.slot;
    healthy.seed = seed;
    healthy.validate();

    // One healthy twin per (seed, policy): the invariant-4 baseline.
    std::map<std::string, double> healthy_makespan;
    for (const auto& policy : opt.policies) {
      const auto scheduler = make_factory(policy)();
      healthy_makespan[policy] =
          simulate(cluster, healthy, jobs, *scheduler).makespan_seconds;
    }

    for (const auto& cls : opt.classes) {
      SimConfig faulty = healthy;
      apply_fault_class(faulty, cls);
      faulty.validate();
      for (const auto& policy : opt.policies) {
        ScenarioReport report =
            run_scenario(cluster, faulty, healthy_makespan[policy], jobs, policy, opt);
        report.name = cls + "/" + policy + "/seed" + std::to_string(seed);
        ++scenario_count;
        all_passed = all_passed && report.passed();
        const std::string line = render(report);
        report_text << line << "\n";
        if (!opt.quiet || !report.passed()) std::cout << line << "\n";
      }
    }
  }

  const std::string verdict =
      std::string(all_passed ? "CHAOS PASS" : "CHAOS FAIL") + ": " +
      std::to_string(scenario_count) + " scenarios (" +
      std::to_string(opt.classes.size()) + " fault classes x " +
      std::to_string(opt.policies.size()) + " policies x " +
      std::to_string(opt.seeds.size()) + " seeds)";
  report_text << verdict << "\n";
  std::cout << verdict << "\n";

  if (!opt.out.empty()) {
    std::ofstream out(opt.out);
    if (!out || !(out << report_text.str())) {
      std::cerr << "cannot write " << opt.out << "\n";
      return 3;
    }
    std::cout << "wrote report to " << opt.out << "\n";
  }
  return all_passed ? 0 : 1;
}
