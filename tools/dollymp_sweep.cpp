// dollymp_sweep — parallel experiment sweep driver.
//
// Runs the full replication grid seeds × policies × fault presets as
// independent simulations fanned across a worker thread pool (whole-run
// parallelism — the complement of the intra-run deterministic core), then
// aggregates flowtime / running-time CDFs and 95% confidence intervals
// into one JSON document.  The rendered JSON is byte-identical for every
// --threads value: replications are aggregated on the calling thread in
// fixed grid order and the document carries no wall-clock/host fields.
//
//   dollymp_sweep [options]
//     --cluster paper30 | google:<N> | google-trace[:<N>] | gpu[:<N>]
//                                                           (default paper30)
//     --jobs N           synthesize N trace-model jobs       (default 200)
//     --gap SECONDS      mean Poisson inter-arrival gap      (default 20)
//     --gpus K           mix K gang-scheduled ML training jobs into the
//                        workload, report GPUs as a third dimension, and
//                        default --cluster to the gpu-pod inventory
//     --slot SECONDS     slot length                         (default 5)
//     --seed S           workload seed / first environment seed (default 1)
//     --replications R   environment seeds S, S+1, ..., S+R-1  (default 3)
//     --seeds A,B,...    explicit environment seed list (overrides -R)
//     --policies a,b,... scheduler keys                      (default: all 9)
//     --faults a,b,...   fault presets: healthy,crash,rack,failslow,
//                        copyfault,all                       (default healthy)
//     --threads N        replications run concurrently on N workers
//                        (0 = hardware concurrency, 1 = serial)
//     --out FILE         write the JSON there instead of stdout
//     --quiet            suppress the timing summary line
//
// Flags also accept --flag=value.
//
// Examples:
//   dollymp_sweep --replications 5 --threads 0
//   dollymp_sweep --faults healthy,crash,all --policies dollymp2,capacity
//                 --threads 4 --out sweep.json   (one line)
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/cli.h"
#include "dollymp/common/experiment.h"
#include "dollymp/common/thread_pool.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/carbyne.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/hopper.h"
#include "dollymp/sched/simple_priority.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/workload/apps.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

namespace {

using namespace dollymp;

struct Options {
  std::string cluster = "paper30";
  int jobs = 200;
  double gap = 20.0;
  int gpus = 0;
  double slot = 5.0;
  std::uint64_t seed = 1;
  int replications = 3;
  std::string seeds;
  std::string policies = "capacity,hopper,drf,tetris,carbyne,srpt,svf,dollymp0,dollymp2";
  std::string faults = "healthy";
  int threads = 1;
  std::string out;
  bool quiet = false;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: dollymp_sweep [--cluster paper30|google:N|google-trace[:N]|gpu[:N]]\n"
      "                     [--jobs N] [--gap SECONDS] [--gpus K] [--slot SECONDS]\n"
      "                     [--seed S] [--replications R] [--seeds A,B,...]\n"
      "                     [--policies a,b,...] [--faults a,b,...]\n"
      "                     [--threads N] [--out FILE] [--quiet]\n"
      "\n"
      "policies: capacity hopper drf tetris carbyne srpt svf dollymp0-3\n"
      "faults:   healthy crash rack failslow copyfault all\n"
      "\n"
      "The JSON is byte-identical for every --threads value; only the\n"
      "replications/sec line (stderr) depends on parallelism.\n";
  std::exit(code);
}

/// cli::split keeps empty tokens (getline semantics); the sweep's list
/// flags historically tolerate stray commas, so drop empties here.
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts = cli::split(text, sep);
  std::erase_if(parts, [](const std::string& part) { return part.empty(); });
  return parts;
}

const std::vector<std::string> kKnownFlags = {
    "--help", "--cluster",      "--jobs",  "--gap",      "--gpus",
    "--slot", "--seed", "--replications", "--seeds", "--policies",
    "--faults", "--threads", "--out",       "--quiet"};

Options parse_options(int argc, char** argv) {
  Options opt;
  const std::vector<std::string> args = cli::normalize_args(argc, argv);
  const int n = static_cast<int>(args.size());
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= n) {
      std::cerr << "missing value for " << args[static_cast<std::size_t>(i)] << "\n";
      usage(2);
    }
    return args[static_cast<std::size_t>(++i)];
  };
  for (int i = 0; i < n; ++i) {
    const std::string& arg = args[static_cast<std::size_t>(i)];
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--cluster") opt.cluster = need_value(i);
    else if (arg == "--jobs") opt.jobs = std::stoi(need_value(i));
    else if (arg == "--gap") opt.gap = std::stod(need_value(i));
    else if (arg == "--gpus") opt.gpus = std::stoi(need_value(i));
    else if (arg == "--slot") opt.slot = std::stod(need_value(i));
    else if (arg == "--seed") opt.seed = std::stoull(need_value(i));
    else if (arg == "--replications") opt.replications = std::stoi(need_value(i));
    else if (arg == "--seeds") opt.seeds = need_value(i);
    else if (arg == "--policies") opt.policies = need_value(i);
    else if (arg == "--faults") opt.faults = need_value(i);
    else if (arg == "--threads") opt.threads = std::stoi(need_value(i));
    else if (arg == "--out") opt.out = need_value(i);
    else if (arg == "--quiet") opt.quiet = true;
    else {
      std::cerr << cli::unknown_flag_message(arg, kKnownFlags) << "\n";
      usage(2);
    }
  }
  if (opt.replications < 1) {
    std::cerr << "--replications wants a positive count\n";
    usage(2);
  }
  return opt;
}

Cluster make_cluster(const std::string& spec) {
  if (spec == "paper30") return Cluster::paper30();
  if (spec == "google-trace") return Cluster::google_trace();
  if (spec == "gpu") return Cluster::gpu_pods(64);
  const auto parts = split(spec, ':');
  if (parts.size() == 2 && parts[0] == "google") {
    return Cluster::google_like(static_cast<std::size_t>(std::stoul(parts[1])));
  }
  if (parts.size() == 2 && parts[0] == "google-trace") {
    return Cluster::google_trace(static_cast<std::size_t>(std::stoul(parts[1])));
  }
  if (parts.size() == 2 && parts[0] == "gpu") {
    return Cluster::gpu_pods(static_cast<std::size_t>(std::stoul(parts[1])));
  }
  std::cerr << "unknown cluster spec '" << spec << "'\n";
  usage(2);
}

ComparisonEntry make_policy(const std::string& key) {
  if (key == "capacity") {
    return {key, [] { return std::make_unique<CapacityScheduler>(); }};
  }
  if (key == "hopper") {
    return {key, [] { return std::make_unique<HopperScheduler>(); }};
  }
  if (key == "drf") {
    return {key, [] { return std::make_unique<DrfScheduler>(); }};
  }
  if (key == "tetris") {
    return {key, [] { return std::make_unique<TetrisScheduler>(); }};
  }
  if (key == "carbyne") {
    return {key, [] { return std::make_unique<CarbyneScheduler>(); }};
  }
  if (key == "srpt") {
    return {key, [] {
              return std::make_unique<SimplePriorityScheduler>(
                  SimplePriorityConfig{SimplePriorityRule::kSrpt, 1.5, 0});
            }};
  }
  if (key == "svf") {
    return {key, [] {
              return std::make_unique<SimplePriorityScheduler>(
                  SimplePriorityConfig{SimplePriorityRule::kSvf, 1.5, 0});
            }};
  }
  if (key.rfind("dollymp", 0) == 0 && key.size() == 8 && key[7] >= '0' && key[7] <= '3') {
    const int budget = key[7] - '0';
    return {key, [budget] {
              DollyMPConfig config;
              config.clone_budget = budget;
              return std::make_unique<DollyMPScheduler>(config);
            }};
  }
  std::cerr << "unknown policy '" << key << "'\n";
  usage(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_options(argc, argv);
  if (opt.gpus > 0 && opt.cluster == "paper30") opt.cluster = "gpu";

  SweepSpec spec;
  spec.cluster = make_cluster(opt.cluster);
  spec.base.slot_seconds = opt.slot;
  spec.base.seed = opt.seed;
  if (opt.gpus > 0) spec.base.resource_dims = 3;

  TraceModel model({}, opt.seed);
  spec.jobs = model.sample_jobs(opt.jobs);
  assign_poisson_arrivals(spec.jobs, opt.gap, opt.seed);
  if (opt.gpus > 0) {
    JobId next_id = 0;
    for (const auto& job : spec.jobs) next_id = std::max(next_id, job.id + 1);
    std::vector<JobSpec> trainers;
    trainers.reserve(static_cast<std::size_t>(opt.gpus));
    for (int k = 0; k < opt.gpus; ++k) {
      trainers.push_back(make_mltrain(next_id + k));
    }
    assign_poisson_arrivals(trainers, opt.gap * 4.0, opt.seed + 2);
    spec.jobs.insert(spec.jobs.end(), trainers.begin(), trainers.end());
  }

  for (const auto& key : split(opt.policies, ',')) {
    spec.policies.push_back(make_policy(key));
  }
  if (spec.policies.empty()) {
    std::cerr << "--policies selected nothing\n";
    usage(2);
  }
  for (const auto& name : split(opt.faults, ',')) {
    try {
      spec.fault_presets.push_back(make_fault_preset(name));
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n";
      usage(2);
    }
  }
  if (!opt.seeds.empty()) {
    for (const auto& s : split(opt.seeds, ',')) {
      spec.seeds.push_back(std::stoull(s));
    }
  } else {
    for (int r = 0; r < opt.replications; ++r) {
      spec.seeds.push_back(opt.seed + static_cast<std::uint64_t>(r));
    }
  }

  std::unique_ptr<ThreadPool> pool;
  if (opt.threads != 1) {
    pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(opt.threads));
  }

  const SweepResult result = run_sweep(spec, pool.get());
  const std::string json = render_sweep_json(result);

  if (opt.out.empty()) {
    std::cout << json;
  } else {
    std::ofstream out(opt.out, std::ios::binary);
    if (!out || !out.write(json.data(), static_cast<std::streamsize>(json.size()))) {
      std::cerr << "cannot write " << opt.out << "\n";
      return 1;
    }
    if (!opt.quiet) std::cout << "wrote sweep JSON to " << opt.out << "\n";
  }
  if (!opt.quiet) {
    const double rate = result.wall_clock_seconds > 0.0
                            ? static_cast<double>(result.replications) / result.wall_clock_seconds
                            : 0.0;
    std::cerr << "sweep: " << result.replications << " replications ("
              << spec.policies.size() << " policies x " << spec.fault_presets.size()
              << " faults x " << spec.seeds.size() << " seeds) on "
              << (pool ? pool->size() : 1) << " worker(s) in "
              << result.wall_clock_seconds << "s = " << rate << " replications/sec\n";
  }
  return 0;
}
