// One-shot generator for the layout-equivalence golden table: runs the
// paired-seed matrix against the *current* build and prints each run's
// flight-recorder stream hash.  Compiled and run by hand against the
// pre-refactor layout; the output is embedded in
// tests/test_layout_equivalence.cpp.
#include <cstdio>
#include <utility>

#include "../tests/layout_golden_matrix.h"
#include "dollymp/obs/recorder.h"

int main() {
  using namespace dollymp;
  const auto runs = layout_golden::run_matrix(
      [](const Cluster& cluster, const SimConfig& config,
         const std::vector<JobSpec>& jobs,
         const SchedulerFactory& factory) -> std::pair<std::uint64_t, std::uint64_t> {
        Recorder rec;
        SimConfig run = config;
        run.recorder = &rec;
        auto sched = factory();
        (void)simulate(cluster, run, jobs, *sched);
        return {rec.hash(), rec.records_written()};
      });
  for (const auto& run : runs) {
    std::printf("    {\"%s\", 0x%016llxULL, %lluULL},\n", run.label.c_str(),
                static_cast<unsigned long long>(run.hash),
                static_cast<unsigned long long>(run.records));
  }
  return 0;
}
