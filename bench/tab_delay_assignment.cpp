// Ablation: the delay-assignment clone-kill policy (Section 5).
//
// When a task's first copy finishes, the paper's AM keeps the remaining
// copy with the best data locality (for intermediate-data transfer) and
// kills the rest; the simulator's kKeepBestLocality models that, while
// kKillImmediately releases everything at once.  This table quantifies the
// trade: the kept copies cost resources but preserve locality for the
// downstream phase (modelled as the remote-read penalty its tasks avoid).
#include <iostream>

#include "bench_common.h"
#include "dollymp/common/table.h"
#include "dollymp/workload/arrivals.h"

using namespace dollymp;
using namespace dollymp::bench;

int main() {
  const Cluster cluster = Cluster::paper30();
  auto jobs = paper_app_mix(80, 21);
  assign_jittered_arrivals(jobs, 60.0, 0.25, 22);

  std::cout << banner("Ablation: clone kill policy (delay assignment, Section 5)");
  ConsoleTable table({"kill_policy", "total_flow_s", "mean_flow_s", "resource_s"});

  double kill_flow = 0.0;
  double keep_flow = 0.0;
  double kill_res = 0.0;
  double keep_res = 0.0;
  for (const auto policy :
       {CloneKillPolicy::kKillImmediately, CloneKillPolicy::kKeepBestLocality}) {
    SimConfig config = deployment_config(21);
    config.kill_policy = policy;
    const SimResult result = run_workload(cluster, config, jobs, "dollymp2");
    table.add_labeled_row(to_string(policy),
                          {result.total_flowtime(), result.mean_flowtime(),
                           result.total_resource_seconds()},
                          0);
    if (policy == CloneKillPolicy::kKillImmediately) {
      kill_flow = result.total_flowtime();
      kill_res = result.total_resource_seconds();
    } else {
      keep_flow = result.total_flowtime();
      keep_res = result.total_resource_seconds();
    }
  }
  std::cout << table.render() << "\n";

  shape_check("Delay assignment: keeping the best-locality copy costs extra resources",
              keep_res / kill_res - 1.0, keep_res >= kill_res);
  shape_check("Delay assignment: flowtime impact is small at moderate load "
              "(the kept copies ride leftover capacity)",
              keep_flow / kill_flow, keep_flow < kill_flow * 1.15);
  return 0;
}
