// Overload-protection acceptance bench: a 5x flash crowd must not take the
// service down — with admission control on, live jobs, resident memory and
// per-slot latency stay flat while the surge lasts, and every arrival the
// gate turned away is accounted for exactly.
//
// Emitted as BENCH_overload_stream.json (micro_main):
//
//   * BM_AdmissionGateThroughput — raw admit/shed decisions per second
//     through the token bucket + priority-shedding pipeline (the gate sits
//     on the arrival path, so its cost must be noise).
//   * BM_OverloadFlashCrowdGate — the gate.  Runs the same 5x-overload
//     stream with protection off (bounded horizon) and on, then fails
//     (SkipWithError, exit 1 via micro_main) unless: (a) conservation —
//     ingested + shed equals every arrival the source emitted; (b) the
//     protected backlog stays a small fraction of the unprotected one;
//     (c) late-surge retained memory and per-window wall time hold flat
//     against the mid-surge steady state.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "dollymp/service/arrival_source.h"
#include "dollymp/service/overload.h"
#include "dollymp/service/session.h"

using namespace dollymp;
using namespace dollymp::bench;

namespace {

/// 5x the sustainable rate through the whole run: paper30 saturates near
/// 0.05 jobs/s at 3 GB inputs, so a flat 5x surge from t=0 is the
/// flash-crowd regime the ISSUE's gate asks for.
ServiceConfig overload_config(bool protection) {
  ServiceConfig config;
  config.policy = "dollymp2";
  config.sim.seed = 17;
  config.pump_slots = 64;
  config.arrivals.rate_per_second = 0.25;
  config.arrivals.mean_input_gb = 3.0;
  config.arrivals.seed = 17;
  config.arrivals.flash_multiplier = 5.0;
  config.arrivals.flash_start_seconds = 0.0;
  config.arrivals.flash_duration_seconds = 1.0e9;
  if (protection) {
    config.overload.admission_enabled = true;
    config.overload.bucket_rate_per_second = 0.5;
    config.overload.bucket_burst = 64.0;
    config.overload.high_watermark = 2.0;
    config.overload.low_watermark = 1.0;
    config.overload.num_tenant_classes = 4;
    config.overload.protected_classes = 1;
    config.overload.governor_enabled = true;
    config.overload.slo_target_p99_seconds = 600.0;
    config.overload.slo_window_size = 256;
    config.overload.slo_min_samples = 64;
  }
  return config;
}

void BM_AdmissionGateThroughput(benchmark::State& state) {
  OverloadConfig config;
  config.admission_enabled = true;
  config.bucket_rate_per_second = 100.0;
  config.bucket_burst = 64.0;
  config.shed_fraction = 0.5;
  AdmissionGate gate(config);
  gate.update_watermark(10.0);  // latched: the expensive path
  JobSpec spec;
  std::int64_t decisions = 0;
  for (auto _ : state) {
    spec.id = decisions;
    spec.arrival_seconds = static_cast<double>(decisions) * 0.01;
    ShedReason reason{};
    benchmark::DoNotOptimize(gate.admit(spec, 0, &reason));
    ++decisions;
  }
  state.counters["decisions/s"] =
      benchmark::Counter(static_cast<double>(decisions), benchmark::Counter::kIsRate);
}

void BM_OverloadFlashCrowdGate(benchmark::State& state) {
  constexpr SimTime kWindow = 100;  // coprime-ish to the 64-slot pump
  constexpr int kWindows = 30;
  constexpr SimTime kHorizon = kWindow * kWindows;
  // The unguarded contrast stops earlier: its backlog grows superlinearly
  // with the surge (that is the point), so a full-horizon run would spend
  // the whole bench budget simulating the outage we are proving away.
  constexpr SimTime kUnprotectedHorizon = 1000;
  for (auto _ : state) {
    Session unprotected(Cluster::paper30(), overload_config(false));
    unprotected.run_until(kUnprotectedHorizon);

    Session session(Cluster::paper30(), overload_config(true));
    std::vector<double> retained;
    std::vector<double> live;
    std::vector<double> window_seconds;
    for (int i = 0; i < kWindows; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      session.run_until(static_cast<SimTime>(i + 1) * kWindow);
      window_seconds.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
      // Retained specs + live jobs are the arrival-path footprint; the
      // recycled store's shape vocabulary saturates on its own and is
      // reported as a counter, not gated.
      retained.push_back(static_cast<double>(session.specs_retained()));
      live.push_back(static_cast<double>(session.live_jobs()));
    }
    state.counters["store_mb_last"] =
        static_cast<double>(session.store_memory_bytes()) / (1024.0 * 1024.0);

    // (a) Conservation: replay the identical source stand-alone; every
    // arrival it emitted must be either ingested or in the shed counters.
    ArrivalSource source(overload_config(true).arrivals);
    std::vector<JobSpec> emitted;
    source.emit_until(static_cast<double>(kHorizon + 1) *
                          overload_config(true).sim.slot_seconds,
                      emitted);
    const long long accounted =
        session.totals().jobs_ingested + session.arrivals_shed();
    state.counters["emitted"] = static_cast<double>(emitted.size());
    state.counters["ingested"] = static_cast<double>(session.totals().jobs_ingested);
    state.counters["shed"] = static_cast<double>(session.arrivals_shed());
    if (accounted != static_cast<long long>(emitted.size())) {
      state.SkipWithError("shed accounting leak: ingested + shed != emitted");
      return;
    }

    // (b) Bounded growth: the protected backlog at triple the horizon must
    // still be a small fraction of what the unguarded service accumulated
    // in a third of the time.
    state.counters["live_protected"] = static_cast<double>(session.live_jobs());
    state.counters["live_unprotected"] = static_cast<double>(unprotected.live_jobs());
    if (session.live_jobs() * 4 >= unprotected.live_jobs()) {
      state.SkipWithError("flash crowd gate: protected backlog not bounded");
      return;
    }

    // (c) Flat late-surge memory and latency vs the mid-surge steady state.
    auto mean_of = [](const std::vector<double>& v, int from, int to) {
      double sum = 0.0;
      for (int i = from; i < to; ++i) sum += v[static_cast<std::size_t>(i)];
      return sum / std::max(1, to - from);
    };
    const double mid_mem = mean_of(retained, kWindows / 3, 2 * kWindows / 3);
    const double late_mem = mean_of(retained, 2 * kWindows / 3, kWindows);
    const double mid_live = mean_of(live, kWindows / 3, 2 * kWindows / 3);
    const double late_live = mean_of(live, 2 * kWindows / 3, kWindows);
    const double mid_lat = mean_of(window_seconds, kWindows / 3, 2 * kWindows / 3);
    const double late_lat = mean_of(window_seconds, 2 * kWindows / 3, kWindows);
    state.counters["mem_drift"] = late_mem / std::max(1.0, mid_mem);
    state.counters["live_drift"] = late_live / std::max(1.0, mid_live);
    state.counters["latency_drift"] = late_lat / std::max(1.0e-9, mid_lat);
    // Retained specs ride the segment-reap cycle (a handful of pump-sized
    // segments), so the floor and threshold absorb that quantization while
    // still catching anything that tracks arrivals instead of live jobs.
    if (late_mem > 1.5 * std::max(64.0, mid_mem)) {
      state.SkipWithError("flash crowd gate: retained specs grow through the surge");
      return;
    }
    if (late_live > 1.2 * std::max(8.0, mid_live)) {
      state.SkipWithError("flash crowd gate: live jobs grow through the surge");
      return;
    }
    if (late_lat > 2.0 * std::max(1.0e-6, mid_lat)) {
      state.SkipWithError("flash crowd gate: per-slot latency grows through the surge");
      return;
    }
  }
}

}  // namespace

BENCHMARK(BM_AdmissionGateThroughput);
BENCHMARK(BM_OverloadFlashCrowdGate)->Unit(benchmark::kMillisecond)->Iterations(1);
