// Extension bench: the fairness cost of flowtime-optimal scheduling.
//
// Size-based priorities (DollyMP, SVF, Tetris's SRPT nudge) buy their
// flowtime wins by making big jobs wait — a trade-off the paper does not
// quantify.  This table reports, for every scheduler under the
// heavily-loaded PageRank workload, total flowtime alongside Jain's
// fairness index over per-job slowdowns and the p95 slowdown, plus the
// Hopper baseline from the related work (speculation-aware but
// non-work-conserving, Section 7's criticism).
#include <iostream>

#include "dollymp/common/table.h"
#include "dollymp/sched/hopper.h"
#include "heavy_load.h"

using namespace dollymp;
using namespace dollymp::bench;

int main() {
  const Cluster cluster = Cluster::paper30();
  auto jobs = heavy_jobs("pagerank", 2022);

  ConsoleTable table(
      {"scheduler", "total_flow_s", "jain_fairness", "p95_slowdown", "p50_slowdown"});

  double dollymp_flow = 0.0;
  double drf_fairness = 0.0;
  double dollymp_fairness = 0.0;
  double hopper_flow = 0.0;
  double capacity_flow = 0.0;

  auto record = [&](const SimResult& result) {
    const Cdf slowdowns = slowdown_cdf(result);
    const double jain = jain_fairness_of_slowdowns(result);
    table.add_labeled_row(result.scheduler,
                          {result.total_flowtime(), jain, slowdowns.quantile(0.95),
                           slowdowns.median()},
                          2);
    if (result.scheduler == "dollymp^2") {
      dollymp_flow = result.total_flowtime();
      dollymp_fairness = jain;
    }
    if (result.scheduler == "drf") drf_fairness = jain;
    if (result.scheduler == "hopper") hopper_flow = result.total_flowtime();
    if (result.scheduler == "capacity") capacity_flow = result.total_flowtime();
  };

  for (const std::string key :
       {"capacity", "drf", "carbyne", "tetris", "svf", "dollymp0", "dollymp2"}) {
    record(run_workload(cluster, deployment_config(2022), jobs, key));
  }
  {
    HopperScheduler hopper;
    record(simulate(cluster, deployment_config(2022), jobs, hopper));
  }

  std::cout << banner("Extension: flowtime vs fairness, heavy load (500 PageRank jobs)");
  std::cout << table.render() << "\n";

  shape_check("DRF is at least as fair (Jain index) as DollyMP^2 — the price of "
              "size-based priority",
              drf_fairness - dollymp_fairness, drf_fairness >= dollymp_fairness - 0.05);
  shape_check("Hopper (speculation-aware, non-work-conserving) beats Capacity but "
              "trails DollyMP^2 (Section 7's argument)",
              hopper_flow / dollymp_flow,
              hopper_flow < capacity_flow && dollymp_flow < hopper_flow * 1.02);
  return 0;
}
