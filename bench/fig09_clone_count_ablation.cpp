// Figure 9: how many clones per task?  DollyMP^1/2/3 on the trace-driven
// workload — job speedup (relative to DollyMP^1) and total resource usage.
//
// Paper: going from 1 to 2 clones helps >30% of jobs reduce flowtime by
// 20%; going from 2 to 3 only adds ~5% of jobs at ~15% extra resources —
// hence the default of two clones.  DESIGN.md also calls out the
// smallest-first clone ordering (Section 4.1) as an ablation; the
// "dollymp2-naive" variant clones largest jobs first.
#include <iostream>

#include "dollymp/common/table.h"
#include "trace_sim.h"

using namespace dollymp;
using namespace dollymp::bench;

int main() {
  const SimResult d0 = trace_run("dollymp0");
  const SimResult d1 = trace_run("dollymp1");
  const SimResult d2 = trace_run("dollymp2");
  const SimResult d3 = trace_run("dollymp3", 99, kTraceServers, /*max_copies_per_task=*/4);
  const SimResult naive = trace_run("dollymp2-naive");

  std::cout << banner("Figure 9: clone-count ablation (trace-driven)");
  ConsoleTable table({"variant", "mean_flow_s", "total_resource_s", "cloned_task_frac",
                      "clones"});
  for (const SimResult* r : {&d0, &d1, &d2, &d3, &naive}) {
    long long clones = 0;
    for (const auto& j : r->jobs) clones += j.clones_launched;
    table.add_labeled_row(r->scheduler + (r == &naive ? " (naive order)" : ""),
                          {r->mean_flowtime(), r->total_resource_seconds(),
                           r->cloned_task_fraction(), static_cast<double>(clones)},
                          2);
  }
  std::cout << table.render() << "\n";

  // Per-job speedup fractions relative to DollyMP^1 (the paper's Fig. 9a).
  const PairedRatios r2 = paired_ratios(d2, d1);
  const PairedRatios r3 = paired_ratios(d3, d1);
  const double frac2 = r2.fraction_flowtime_reduced_by(0.20);
  const double frac3 = r3.fraction_flowtime_reduced_by(0.20);
  std::cout << "jobs with >=20% flowtime reduction vs DollyMP^1:  2 clones: " << frac2
            << "  3 clones: " << frac3 << "\n";

  shape_check("Fig9a: the 2nd clone helps a meaningful share of jobs (paper: >30% "
              "of jobs gain >=20%)",
              frac2, frac2 > 0.05);
  shape_check("Fig9a: the 3rd clone adds little on top of the 2nd (paper: ~5% more "
              "jobs)",
              frac3 - frac2, frac3 - frac2 < 0.15);
  const double extra_resources =
      d3.total_resource_seconds() / d2.total_resource_seconds() - 1.0;
  shape_check("Fig9b: DollyMP^3 burns more resources than DollyMP^2 (paper: +15%)",
              extra_resources, extra_resources > 0.0);
  shape_check("Ablation: smallest-first clone ordering (Sec 4.1) is not worse than "
              "naive largest-first",
              naive.mean_flowtime() / d2.mean_flowtime(),
              d2.mean_flowtime() <= naive.mean_flowtime() * 1.05);
  return 0;
}
