// Section 6.3.3: scheduling overhead.
//
// Paper: "the scheduler takes less than 20 ms to make scheduling decisions
// for all jobs in our private cluster.  ...scheduling 1K jobs to 30K
// machines costs less than 50 ms on a 3.3 GHz 6-Core Intel Core i5."
//
// BM_Decide30Nodes measures one full decision round (priority recompute +
// placement passes) for the paper's 30-node cluster; BM_Decide1KJobs30K
// measures 1 000 jobs against a 30 000-server inventory.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/workload/trace_model.h"

using namespace dollymp;
using namespace dollymp::bench;

namespace {

std::vector<JobSpec> overhead_jobs(int count) {
  TraceModelConfig config;
  config.max_tasks_per_phase = 100;
  TraceModel model(config, 5);
  return model.sample_jobs(count);
}

SimConfig overhead_config() {
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 5;
  config.background.enabled = false;
  return config;
}

void decide(DryRunContext& ctx, DollyMPScheduler& scheduler) {
  scheduler.reset();
  scheduler.recompute_priorities(ctx);
  scheduler.schedule(ctx);
}

void BM_Decide30Nodes(benchmark::State& state) {
  DryRunContext ctx(Cluster::paper30(), overhead_jobs(static_cast<int>(state.range(0))),
                    overhead_config());
  DollyMPScheduler scheduler;
  for (auto _ : state) {
    decide(ctx, scheduler);
    state.PauseTiming();
    ctx.reset_placements();
    state.ResumeTiming();
  }
  state.counters["jobs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Decide30Nodes)->Arg(10)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_Decide1KJobs30KMachines(benchmark::State& state) {
  DryRunContext ctx(Cluster::google_like(30000), overhead_jobs(1000), overhead_config());
  DollyMPScheduler scheduler;
  int placements = 0;
  for (auto _ : state) {
    decide(ctx, scheduler);
    state.PauseTiming();
    placements = ctx.placements();
    ctx.reset_placements();
    state.ResumeTiming();
  }
  state.counters["placements"] = static_cast<double>(placements);
}
BENCHMARK(BM_Decide1KJobs30KMachines)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_PriorityRecomputeOnly(benchmark::State& state) {
  DryRunContext ctx(Cluster::google_like(1000), overhead_jobs(static_cast<int>(state.range(0))),
                    overhead_config());
  DollyMPScheduler scheduler;
  for (auto _ : state) {
    scheduler.recompute_priorities(ctx);
  }
}
BENCHMARK(BM_PriorityRecomputeOnly)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
