// Microbenchmark: the knapsack oracle of Algorithm 1 (unit-profit greedy)
// and the DP solver, across item counts.  The oracle dominates the cost of
// a priority recomputation, so its scaling is what bounds the Section
// 6.3.3 overhead numbers.
#include <benchmark/benchmark.h>

#include "dollymp/common/rng.h"
#include "dollymp/sched/knapsack.h"
#include "dollymp/sched/priority.h"

using namespace dollymp;

namespace {

std::vector<double> random_weights(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.uniform(0.1, 10.0);
  return weights;
}

void BM_KnapsackUnitProfit(benchmark::State& state) {
  const auto weights = random_weights(static_cast<std::size_t>(state.range(0)), 1);
  const double budget = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(knapsack_unit_profit(weights, budget));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KnapsackUnitProfit)->Range(16, 16384)->Complexity(benchmark::oNLogN);

void BM_KnapsackDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto weights = random_weights(n, 2);
  const auto profits = random_weights(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knapsack_dp(weights, profits, 50.0, 1024));
  }
}
BENCHMARK(BM_KnapsackDp)->Range(16, 1024);

// Regression guard for the flattened DP choice table: a large item set at
// high resolution makes the table the dominant cost, so a layout regression
// (back to one heap row per item) shows up directly here.
void BM_KnapsackDpLargeTable(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto weights = random_weights(n, 5);
  const auto profits = random_weights(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knapsack_dp(weights, profits, 200.0, 4096));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KnapsackDpLargeTable)->Range(256, 2048)->Unit(benchmark::kMillisecond);

void BM_TransientPriorities(benchmark::State& state) {
  Rng rng(4);
  std::vector<PriorityJobInput> jobs(static_cast<std::size_t>(state.range(0)));
  for (auto& j : jobs) {
    j.volume = rng.uniform(0.1, 50.0);
    j.length = rng.uniform(1.0, 500.0);
    j.dominant = rng.uniform(0.0, 0.3);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_transient_priorities(jobs));
  }
}
BENCHMARK(BM_TransientPriorities)->Range(16, 4096)->Unit(benchmark::kMicrosecond);

}  // namespace
