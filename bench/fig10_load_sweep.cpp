// Figure 10: the effect of cloning under different cluster loads.  The
// workload is fixed while the number of servers (hence cores) shrinks —
// the paper varies the CPU count so the highest load is ~10x the lowest.
//
// Paper: even at high load, cloning (DollyMP^2 vs DollyMP^0) trims ~10% of
// total flowtime while consuming only ~2% extra resources, because the
// scheduler only clones small jobs when there is genuinely spare room;
// ~40% of tasks still get cloned copies under high load.
#include <iostream>

#include "dollymp/common/table.h"
#include "trace_sim.h"

using namespace dollymp;
using namespace dollymp::bench;

int main() {
  std::cout << banner("Figure 10: cloning vs cluster load (DollyMP^2 vs DollyMP^0)");
  ConsoleTable table({"servers", "flow_reduction", "extra_resources", "cloned_task_frac",
                      "jobs_gaining_20pct"});

  double high_load_reduction = 0.0;
  double high_load_extra = 0.0;
  double high_load_cloned = 0.0;
  double low_load_cloned = 0.0;

  const std::size_t sizes[] = {900, 300, 150, 90};  // ~10x load span, ~12% to ~110%
  for (const std::size_t servers : sizes) {
    const SimResult with = trace_run("dollymp2", 99, servers);
    const SimResult without = trace_run("dollymp0", 99, servers);
    const double reduction = 1.0 - with.total_flowtime() / without.total_flowtime();
    const double extra =
        with.total_resource_seconds() / without.total_resource_seconds() - 1.0;
    const PairedRatios ratios = paired_ratios(with, without);
    const double gain20 = ratios.fraction_flowtime_reduced_by(0.20);
    table.add_labeled_row(std::to_string(servers),
                          {reduction, extra, with.cloned_task_fraction(), gain20}, 3);
    if (servers == sizes[3]) {
      high_load_reduction = reduction;
      high_load_extra = extra;
      high_load_cloned = with.cloned_task_fraction();
    }
    if (servers == sizes[0]) low_load_cloned = with.cloned_task_fraction();
  }
  std::cout << table.render() << "\n";

  shape_check("Fig10a: cloning still reduces flowtime at 10x load (paper: ~10%)",
              high_load_reduction, high_load_reduction > 0.0);
  shape_check("Fig10a: extra resource consumption stays small at high load "
              "(paper: ~2%)",
              high_load_extra, high_load_extra < 0.30);
  shape_check("Fig10b: a large fraction of tasks still get clones at high load "
              "(paper: ~40%)",
              high_load_cloned, high_load_cloned > 0.05);
  shape_check("Fig10b: more cloning when the cluster is larger (lower load)",
              low_load_cloned - high_load_cloned, low_load_cloned >= high_load_cloned);
  return 0;
}
