// Figure 2: the motivating three-job example on one normalized server.
//
//   Job 1: demand (1.00, 1.00), expected 20 s  (fills the server)
//   Job 2: demand (0.25, 0.25), expected  8 s
//   Job 3: demand (0.25, 0.25), expected  8 s
//
// Tetris picks Job 1 first (largest alignment score a + eps*p), serializing
// the small jobs behind it.  DollyMP's knapsack priorities schedule Jobs
// 2+3 first *with one clone each* (speedup 8 s -> 6 s for the Pareto shape
// used here), then Job 1.  The paper reports 46 s total completion under
// Tetris vs 28 s under DollyMP; the reproduction target is the shape:
// DollyMP's total is a large factor below Tetris's.
//
// The work-based execution model is used so completion times equal their
// expectations (the figure reasons in expectations).
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "dollymp/common/table.h"

using namespace dollymp;
using namespace dollymp::bench;

namespace {

std::vector<JobSpec> figure_jobs() {
  // Pareto shape alpha = 2.5 gives h(2) = 1 + (1 - 1/2)/(1.5) = 4/3, the
  // 8 s -> 6 s speedup of the figure.  cv^2 = 1/(alpha*(alpha-2)) = 0.8.
  const double cv = std::sqrt(0.8);
  std::vector<JobSpec> jobs;
  jobs.push_back(JobSpec::single_task(1, {1.0, 1.0}, 20.0, 0.0));
  jobs.push_back(JobSpec::single_task(2, {0.25, 0.25}, 8.0, cv * 8.0));
  jobs.push_back(JobSpec::single_task(3, {0.25, 0.25}, 8.0, cv * 8.0));
  return jobs;
}

SimConfig figure_config() {
  SimConfig config;
  config.slot_seconds = 1.0;
  config.seed = 1;
  config.model = ExecutionModel::kWorkBased;
  config.background.enabled = false;
  config.locality.enabled = false;
  return config;
}

}  // namespace

int main() {
  const Cluster cluster = Cluster::single({1.0, 1.0});
  std::cout << "Figure 2: motivating example — one unit server, three jobs\n"
            << "  Job1 (1.00,1.00) 20s | Job2 (0.25,0.25) 8s | Job3 (0.25,0.25) 8s\n";

  ConsoleTable table({"scheduler", "J1_done", "J2_done", "J3_done", "total_completion"});
  double tetris_total = 0.0;
  double dollymp_total = 0.0;
  for (const auto& key : {std::string("tetris"), std::string("dollymp1")}) {
    const SimResult result = run_workload(cluster, figure_config(), figure_jobs(), key);
    const double total = result.total_flowtime();
    table.add_labeled_row(key, {result.job(1).finish_seconds, result.job(2).finish_seconds,
                                result.job(3).finish_seconds, total},
                          0);
    if (key == "tetris") tetris_total = total;
    else dollymp_total = total;
  }
  std::cout << table.render() << "\n";
  std::cout << "paper reference: Tetris total = 46 s, DollyMP total = 28 s (ratio 0.61)\n";

  shape_check("Fig2: DollyMP schedules small jobs (with clones) first and its total "
              "completion is well below Tetris's",
              dollymp_total / tetris_total, dollymp_total < 0.75 * tetris_total);

  // The cloning detail: Job 2 and Job 3 must have received one clone each.
  const SimResult dmp = run_workload(cluster, figure_config(), figure_jobs(), "dollymp1");
  shape_check("Fig2: DollyMP makes one clone for Job2 and Job3",
              static_cast<double>(dmp.job(2).clones_launched + dmp.job(3).clones_launched),
              dmp.job(2).clones_launched == 1 && dmp.job(3).clones_launched == 1);
  return 0;
}
