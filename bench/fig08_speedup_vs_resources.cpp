// Figure 8: trace-driven simulation — per-job ratios of (a) job duration
// and (b) resource usage under DollyMP^2 relative to Tetris and DRF.
//
// Paper: at least 40% of jobs see >=30% flowtime reduction vs Tetris with
// an average speedup of 22%; ~70% of jobs consume about double the
// resources of DRF while the *total* resource consumption is only ~60%
// higher (clones go to small jobs); makespan drops ~18%.
#include <iostream>

#include "trace_sim.h"

using namespace dollymp;
using namespace dollymp::bench;

int main() {
  const SimResult dollymp = trace_run("dollymp2");
  const SimResult tetris = trace_run("tetris");
  const SimResult drf = trace_run("drf");

  const PairedRatios vs_tetris = paired_ratios(dollymp, tetris);
  const PairedRatios vs_drf = paired_ratios(dollymp, drf);

  print_cdf_figure("Figure 8a: per-job flowtime ratio, DollyMP^2 / Tetris",
                   {{"flow_ratio", vs_tetris.flowtime_ratio}});
  print_cdf_figure("Figure 8b: per-job resource-usage ratio, DollyMP^2 / DRF",
                   {{"resource_ratio", vs_drf.resource_ratio}});

  const double frac30 = vs_tetris.fraction_flowtime_reduced_by(0.30);
  shape_check("Fig8a: a large fraction of jobs gain >=30% flowtime vs Tetris "
              "(paper: >=40%)",
              frac30, frac30 > 0.2);

  const double mean_speedup = mean_flowtime_reduction(dollymp, tetris);
  shape_check("Fig8a: average flowtime reduction vs Tetris (paper: ~22%)", mean_speedup,
              mean_speedup > 0.05);

  const double doubled = 1.0 - vs_drf.resource_ratio.fraction_at_most(1.5);
  shape_check("Fig8b: a sizeable fraction of jobs consume ~2x resources vs DRF "
              "(paper: ~70% of jobs)",
              doubled, doubled > 0.2);

  // The paper's point: most jobs individually double their usage yet the
  // *total* overhead is much smaller (+60%) because cloning concentrates on
  // small jobs.  The reproduction check compares the aggregate overhead to
  // the typical per-job overhead.
  const double total_overhead =
      dollymp.total_resource_seconds() / drf.total_resource_seconds() - 1.0;
  const double median_job_overhead = vs_drf.resource_ratio.median() - 1.0;
  shape_check("Fig8b: total resource overhead below the typical per-job overhead "
              "(clones target small jobs; paper: +60% total vs ~2x per job)",
              total_overhead, total_overhead < median_job_overhead);

  const double makespan_cut = 1.0 - dollymp.makespan_seconds / tetris.makespan_seconds;
  shape_check("Fig8: makespan reduced vs Tetris (paper: ~18%)", makespan_cut,
              makespan_cut > -0.05);
  return 0;
}
