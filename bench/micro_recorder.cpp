// Microbenchmark: flight-recorder overhead.
//
// The recorder's contract is "near-zero cost": every instrumentation site
// is one `if (rec_)` branch when disabled, and one fixed-size struct copy
// plus a hash fold when enabled.  This bench measures (a) raw append
// throughput for ring and unbounded recorders, (b) end-to-end simulation
// wall time with the recorder off / ring / unbounded, and (c) a guard that
// *fails the benchmark* (SkipWithError, so it is red in the console and in
// BENCH_micro_recorder.json) if the bounded-ring recorder slows a full
// simulation down by more than 5%.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dollymp/obs/recorder.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

using namespace dollymp;
using namespace dollymp::bench;

namespace {

std::vector<JobSpec> sim_jobs(int count, std::uint64_t seed) {
  TraceModelConfig config;
  config.max_tasks_per_phase = 100;
  TraceModel model(config, seed);
  auto jobs = model.sample_jobs(count);
  assign_poisson_arrivals(jobs, 5.0, seed + 1);
  return jobs;
}

TraceRecord sample_record(int i) {
  TraceRecord r;
  r.slot = i;
  r.type = static_cast<TraceEv>(i % 23);
  r.job = i % 64;
  r.phase = i % 4;
  r.task = i % 100;
  r.copy = i % 3;
  r.server = i % 1000;
  r.aux = i;
  r.score = static_cast<double>(i) * 0.25;
  return r;
}

// Raw append cost: one struct copy + one hash fold (+ ring bookkeeping).
void BM_RecorderAppendUnbounded(benchmark::State& state) {
  Recorder rec;
  int i = 0;
  for (auto _ : state) {
    rec.append(sample_record(i++));
    if (rec.records_written() >= 1u << 20) {  // bound memory, keep hot
      state.PauseTiming();
      rec.clear();
      state.ResumeTiming();
    }
  }
  benchmark::DoNotOptimize(rec.hash());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecorderAppendUnbounded);

void BM_RecorderAppendRing(benchmark::State& state) {
  Recorder rec(static_cast<std::size_t>(state.range(0)));
  int i = 0;
  for (auto _ : state) {
    rec.append(sample_record(i++));
  }
  benchmark::DoNotOptimize(rec.hash());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecorderAppendRing)->Arg(1 << 10)->Arg(1 << 16);

// End-to-end simulation wall time per recorder mode.  mode: 0 = recorder
// off (the default-path baseline), 1 = bounded ring, 2 = unbounded.
void BM_SimulatorRecorderMode(benchmark::State& state) {
  const auto jobs = sim_jobs(200, 3);
  const Cluster cluster = Cluster::google_like(100);
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 3;
  const int mode = static_cast<int>(state.range(0));
  long long records = 0;
  for (auto _ : state) {
    Recorder recorder(mode == 1 ? (1u << 10) : 0u);
    config.recorder = mode == 0 ? nullptr : &recorder;
    DollyMPScheduler scheduler;
    const SimResult result = simulate(cluster, config, jobs, scheduler);
    records = result.stats.recorder_records;
    benchmark::DoNotOptimize(result.total_flowtime());
  }
  state.counters["records"] = static_cast<double>(records);
  state.SetLabel(mode == 0 ? "off" : mode == 1 ? "ring1k" : "unbounded");
}
BENCHMARK(BM_SimulatorRecorderMode)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// Overhead guard: best-of-N paired measurement of the same simulation with
// the recorder off vs a bounded ring.  Best-of-N (not mean) because the
// interesting quantity is intrinsic cost, not scheduler noise.  Fails the
// benchmark if the ring costs more than 5%.
void BM_RecorderOverheadGuard(benchmark::State& state) {
  const auto jobs = sim_jobs(150, 11);
  const Cluster cluster = Cluster::google_like(100);
  SimConfig base;
  base.slot_seconds = 5.0;
  base.seed = 11;

  const auto run_once = [&](Recorder* recorder) {
    SimConfig config = base;
    config.recorder = recorder;
    DollyMPScheduler scheduler;
    const auto start = std::chrono::steady_clock::now();
    const SimResult result = simulate(cluster, config, jobs, scheduler);
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(result.total_flowtime());
    return std::chrono::duration<double>(stop - start).count();
  };

  const auto measure = [&](int rounds) {
    double best_off = 1e30;
    double best_ring = 1e30;
    for (int round = 0; round < rounds; ++round) {  // interleaved pairs
      best_off = std::min(best_off, run_once(nullptr));
      Recorder ring(1u << 10);
      best_ring = std::min(best_ring, run_once(&ring));
    }
    return (best_ring / best_off - 1.0) * 100.0;
  };

  double overhead_pct = 0.0;
  for (auto _ : state) {
    overhead_pct = measure(7);
    if (overhead_pct > 5.0) {
      // One transiently noisy round (CI neighbours, frequency scaling)
      // should not fail the budget: re-measure with more rounds and let
      // the longer, calmer sample decide.
      overhead_pct = measure(15);
    }
  }
  state.counters["overhead_pct"] = overhead_pct;
  if (overhead_pct > 5.0) {
    state.SkipWithError(("ring recorder overhead " + std::to_string(overhead_pct) +
                         "% exceeds the 5% budget")
                            .c_str());
  }
}
BENCHMARK(BM_RecorderOverheadGuard)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
