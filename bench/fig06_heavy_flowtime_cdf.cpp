// Figure 6: flowtime CDF per application in the heavily-loaded regime.
// Paper: most DollyMP jobs finish within 6000 s of arrival, vs ~60% under
// Tetris and ~45% under the Capacity scheduler.
#include <iostream>

#include "heavy_load.h"

using namespace dollymp;
using namespace dollymp::bench;

int main() {
  for (const std::string app : {"pagerank", "wordcount"}) {
    std::vector<std::pair<std::string, Cdf>> series;
    Cdf dollymp_cdf;
    Cdf tetris_cdf;
    Cdf capacity_cdf;
    for (const std::string key : {"capacity", "tetris", "dollymp2"}) {
      const SimResult result = heavy_run(app, key);
      Cdf cdf = flowtime_cdf(result);
      if (key == "dollymp2") dollymp_cdf = cdf;
      if (key == "tetris") tetris_cdf = cdf;
      if (key == "capacity") capacity_cdf = cdf;
      series.emplace_back(key, std::move(cdf));
    }
    print_cdf_figure("Figure 6 (" + app + "): flowtime CDF, heavy load", series);

    // Shape: at DollyMP^2's p90 flowtime, Tetris and Capacity have
    // completed substantially smaller fractions, Capacity the least.
    const double cut = dollymp_cdf.quantile(0.9);
    const double tetris_frac = tetris_cdf.fraction_at_most(cut);
    const double capacity_frac = capacity_cdf.fraction_at_most(cut);
    shape_check("Fig6 (" + app + "): fraction of Tetris jobs within DollyMP^2 p90 "
                "flowtime < 0.9",
                tetris_frac, tetris_frac < 0.9);
    shape_check("Fig6 (" + app + "): Capacity fraction below Tetris fraction",
                capacity_frac, capacity_frac <= tetris_frac + 0.02);
  }
  return 0;
}
