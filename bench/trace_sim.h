// Shared setup for the trace-driven simulations of Section 6.3 (Figs.
// 8-11).  The paper replays Google traces on >30K simulated servers; we
// synthesize an equivalent workload (DESIGN.md section 1) and scale the
// cluster down to keep the bench binaries fast — the load level, not the
// absolute size, is what the experiments exercise.  Slot length is the
// paper's 5 seconds.
#pragma once

#include "bench_common.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

namespace dollymp::bench {

inline constexpr int kTraceJobs = 1000;
inline constexpr std::size_t kTraceServers = 300;

inline std::vector<JobSpec> trace_jobs(std::uint64_t seed, int count = kTraceJobs,
                                       double gap_seconds = 0.31) {
  TraceModelConfig config;
  config.max_tasks_per_phase = 400;
  TraceModel model(config, seed);
  auto jobs = model.sample_jobs(count);
  // Calibrated to ~35% average utilization on the default 300-server
  // cluster: the Section 6.3.1 experiments state "the cluster load is not
  // high" (that is what leaves room for clones) and Google trace analyses
  // report <50% average utilization [36].  Fig. 10 sweeps the load by
  // shrinking the cluster; Fig. 11 uses a heavily-loaded sizing.
  assign_poisson_arrivals(jobs, gap_seconds, seed + 3);
  return jobs;
}

inline SimResult trace_run(const std::string& scheduler_key, std::uint64_t seed = 99,
                           std::size_t servers = kTraceServers,
                           int max_copies_per_task = 3, double gap_seconds = 0.31) {
  const Cluster cluster = Cluster::google_like(servers);
  SimConfig config = deployment_config(seed);
  // The system-wide cap defaults to the paper's "at most three concurrent
  // copies"; the Fig. 9 DollyMP^3 ablation raises it so the third clone can
  // actually launch.
  config.max_copies_per_task = max_copies_per_task;
  return run_workload(cluster, config, trace_jobs(seed, kTraceJobs, gap_seconds),
                      scheduler_key);
}

}  // namespace dollymp::bench
