// Extension bench (the paper's Section 8 future work): online learning of
// straggler-prone servers.
//
// "As future works, we plan to apply online learning methods to quickly
// identify those servers that can easily lead to stragglers."  We
// implement that as a per-server EWMA slowdown estimator
// (learn/server_scorer.h) that DollyMP can consult when placing copies and
// clones.  This bench compares DollyMP^2 with and without the learned
// placement on the 30-node cluster under strong, persistent background
// contention (the regime where a few machines are temporarily "bad"), plus
// the Corollary 4.1 clone-budget variant.
#include <iostream>

#include "bench_common.h"
#include "dollymp/common/table.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/workload/arrivals.h"

using namespace dollymp;
using namespace dollymp::bench;

namespace {

SimConfig contended_config(std::uint64_t seed) {
  SimConfig config = deployment_config(seed);
  // Strong, slowly-changing contention: some machines are 'bad' for long
  // stretches — exactly what the learner can exploit.
  config.background.contention_probability = 0.35;
  config.background.mean_interval_seconds = 600.0;
  config.background.max_slowdown = 8.0;
  return config;
}

}  // namespace

int main() {
  const Cluster cluster = Cluster::paper30();
  const int kSeeds = 8;

  double blind_total = 0.0;
  double aware_total = 0.0;
  double corollary_total = 0.0;

  ConsoleTable table({"variant", "mean_flow_s", "p95_flow_s", "clones"});
  for (const auto& [label, aware, corollary] :
       {std::tuple<const char*, bool, bool>{"dollymp^2 (blind)", false, false},
        {"dollymp^2 + learned placement", true, false},
        {"dollymp^2 + corollary-4.1 budgets", false, true}}) {
    RunningStats mean_flow;
    RunningStats p95_flow;
    long long clones = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      auto jobs = paper_app_mix(60, 11);
      assign_jittered_arrivals(jobs, 40.0, 0.25, 11);
      DollyMPConfig dc;
      dc.straggler_aware = aware;
      dc.corollary_clone_counts = corollary;
      DollyMPScheduler scheduler(dc);
      const SimResult result =
          simulate(cluster, contended_config(static_cast<std::uint64_t>(seed)), jobs,
                   scheduler);
      mean_flow.add(result.mean_flowtime());
      p95_flow.add(flowtime_cdf(result).quantile(0.95));
      for (const auto& j : result.jobs) clones += j.clones_launched;
    }
    table.add_labeled_row(label,
                          {mean_flow.mean(), p95_flow.mean(),
                           static_cast<double>(clones) / kSeeds},
                          1);
    if (std::string(label).find("blind") != std::string::npos) {
      blind_total = mean_flow.mean();
    } else if (std::string(label).find("learned") != std::string::npos) {
      aware_total = mean_flow.mean();
    } else {
      corollary_total = mean_flow.mean();
    }
  }
  std::cout << banner("Extension: straggler-aware placement & Corollary 4.1 budgets");
  std::cout << table.render() << "\n";

  shape_check("Sec 8 extension: learned placement reduces mean flowtime under "
              "persistent contention",
              1.0 - aware_total / blind_total, aware_total < blind_total);
  shape_check("Corollary 4.1 budgets do not degrade mean flowtime",
              1.0 - corollary_total / blind_total,
              corollary_total < blind_total * 1.05);
  return 0;
}
