// Figure 1: running time of the same 4 GB WordCount job repeated 8 times on
// the (otherwise idle) 30-node cluster, under the Capacity scheduler and
// DollyMP^0/1/2.  Each repetition is submitted after the previous one
// finishes (no queueing), so the figure isolates straggler variability and
// the effect of cloning.
//
// Paper's reading: Capacity and DollyMP^0 vary a lot run-to-run; DollyMP^1/2
// are stable, and DollyMP^2 cuts the average running time by ~20%.
#include <iostream>

#include "bench_common.h"
#include "dollymp/common/stats.h"
#include "dollymp/common/table.h"

using namespace dollymp;
using namespace dollymp::bench;

int main() {
  const Cluster cluster = Cluster::paper30();
  const int kRuns = 8;
  const std::vector<std::string> schedulers = {"capacity", "dollymp0", "dollymp1",
                                               "dollymp2"};

  std::cout << "Figure 1: 4GB WordCount repeated " << kRuns
            << "x on an idle 30-node cluster (seconds per run)\n";

  ConsoleTable table({"scheduler", "run1", "run2", "run3", "run4", "run5", "run6", "run7",
                      "run8", "mean", "sd"});
  double capacity_mean = 0.0;
  double dollymp2_mean = 0.0;
  double capacity_sd = 0.0;
  double dollymp2_sd = 0.0;

  for (const auto& key : schedulers) {
    RunningStats stats;
    std::vector<double> row;
    for (int run = 0; run < kRuns; ++run) {
      // One job per run: the cluster is idle between repetitions.  The
      // environment seed varies per run (background load changes over
      // time, Section 2) but is identical across schedulers.
      const std::vector<JobSpec> jobs{
          make_wordcount(0, 4.0, 0.0, paper_app_config())};
      const SimResult result =
          run_workload(cluster, deployment_config(1000 + run), jobs, key);
      const double seconds = result.jobs[0].running_time();
      stats.add(seconds);
      row.push_back(seconds);
    }
    row.push_back(stats.mean());
    row.push_back(stats.stddev());
    table.add_labeled_row(key, row, 0);
    if (key == "capacity") {
      capacity_mean = stats.mean();
      capacity_sd = stats.stddev();
    }
    if (key == "dollymp2") {
      dollymp2_mean = stats.mean();
      dollymp2_sd = stats.stddev();
    }
  }
  std::cout << table.render() << "\n";

  const double reduction = 1.0 - dollymp2_mean / capacity_mean;
  shape_check("Fig1: DollyMP^2 cuts mean running time by ~20% vs Capacity",
              reduction, reduction > 0.08);
  shape_check("Fig1: DollyMP^2 is more stable (smaller run-to-run sd)",
              dollymp2_sd / capacity_sd, dollymp2_sd < capacity_sd);
  return 0;
}
