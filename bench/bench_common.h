// Shared harness for the figure/table reproduction benches.
//
// Every bench binary prints (a) the measured rows/series for its figure and
// (b) "[shape]" lines comparing the measured trend against what the paper
// reports.  Shape lines state the paper's claim, the measured value, and
// whether the qualitative trend holds — absolute numbers are not expected
// to match (our substrate is a simulator, DESIGN.md section 1).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/stats.h"
#include "dollymp/common/thread_pool.h"
#include "dollymp/metrics/report.h"
#include "dollymp/sched/scheduler.h"
#include "dollymp/sim/runtime_store.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/apps.h"

namespace dollymp::bench {

/// Factory over every policy in the library.  Keys: "capacity", "drf",
/// "tetris", "carbyne", "srpt", "svf", "hopper", "dollymp0".."dollymp3",
/// "dollymp2-naive" (clones largest-first — the Section 4.1 ablation).
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(const std::string& key);

/// Standard simulation configuration used by the deployment-style benches
/// (5 s slots, background load + locality on, per Section 6).
[[nodiscard]] SimConfig deployment_config(std::uint64_t seed);

/// Run one workload under one scheduler key.
[[nodiscard]] SimResult run_workload(const Cluster& cluster, const SimConfig& config,
                                     const std::vector<JobSpec>& jobs,
                                     const std::string& scheduler_key);

/// The evaluation's application mix (Section 6.2): `count` jobs, split
/// evenly between PageRank (half 10 GB, half 1 GB inputs) and WordCount
/// (10 GB), durations calibrated to the paper's 30-node scale.
[[nodiscard]] std::vector<JobSpec> paper_app_mix(int count, std::uint64_t seed);

/// Homogeneous application suites for the Fig. 5-7 experiments.
[[nodiscard]] std::vector<JobSpec> pagerank_suite(int count, std::uint64_t seed);
[[nodiscard]] std::vector<JobSpec> wordcount_suite(int count, std::uint64_t seed);

/// The AppConfig used by all paper-scale workloads (calibrated so a 4 GB
/// WordCount takes a few hundred seconds on the 30-node cluster, Fig. 1).
[[nodiscard]] AppConfig paper_app_config();

/// Print a CDF as ten quantile rows per labelled series, like the paper's
/// CDF figures.
void print_cdf_figure(const std::string& title,
                      const std::vector<std::pair<std::string, Cdf>>& series);

/// Emit a shape-check line: the paper's claim, the measured value and
/// whether the measured trend matches.
void shape_check(const std::string& claim, double measured, bool holds);

/// Sum of flowtimes table for a set of results, followed by the
/// control-plane counter table (scheduler invocations, fast-forwarded
/// slots, events by kind, placement funnel).
void print_flowtime_table(const std::string& title, const std::vector<SimResult>& results);

/// A stand-alone SchedulerContext for latency measurements (Section 6.3.3):
/// placements allocate real server resources and create copy records, but
/// no events are generated and time never advances — exactly the work a
/// Resource Manager does when making one round of scheduling decisions.
class DryRunContext final : public SchedulerContext {
 public:
  /// Materializes `jobs` as already-arrived runtime state over `cluster`.
  /// The specs are copied in: JobRuntime holds pointers into them for the
  /// lifetime of the context.
  DryRunContext(Cluster cluster, std::vector<JobSpec> jobs, const SimConfig& config);

  [[nodiscard]] SimTime now() const override { return 0; }
  [[nodiscard]] double slot_seconds() const override { return config_.slot_seconds; }
  [[nodiscard]] const Cluster& cluster() const override { return cluster_; }
  [[nodiscard]] const SimConfig& config() const override { return config_; }
  [[nodiscard]] const std::vector<JobRuntime*>& active_jobs() override { return active_; }
  [[nodiscard]] Rng& policy_rng() override { return rng_; }

  bool place_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                  ServerId server) override;
  bool place_speculative_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                              ServerId server) override {
    return place_copy(job, phase, task, server);
  }
  /// Time never advances in a dry run; wakeup requests are meaningless.
  void request_wakeup(SimTime /*slot*/) override {}

  /// Deterministic parallel core, honoring SimConfig::threads exactly as
  /// the simulator does (1 = sequential, 0 = hardware concurrency; a pool
  /// that resolves to fewer than two workers is dropped).
  [[nodiscard]] ThreadPool* worker_pool() override { return pool_ ? &*pool_ : nullptr; }
  [[nodiscard]] ShardStats* shard_stats() override { return &shard_stats_; }

  /// Undo all placements so the next measured round starts from scratch.
  void reset_placements();

  [[nodiscard]] int placements() const { return placements_; }

  /// The flat runtime store backing the dry run — exposed so micro benches
  /// can report pool counters (allocations per round) alongside timings.
  [[nodiscard]] const RuntimeStore& store() const { return store_; }

 private:
  Cluster cluster_;
  SimConfig config_;
  LocalityModel locality_;
  Rng rng_{7};
  std::vector<JobSpec> specs_;  ///< owned: JobRuntime::spec points in here
  RuntimeStore store_;
  std::vector<JobRuntime>& jobs_ = store_.jobs();
  std::vector<JobRuntime*> active_;
  std::optional<ThreadPool> pool_;
  ShardStats shard_stats_;
  int placements_ = 0;
};

}  // namespace dollymp::bench
