// Shared main() for the micro benchmarks.  Besides the console table, each
// binary always writes machine-readable JSON — BENCH_<binary>.json in the
// working directory — so the perf trajectory is tracked across PRs without
// anyone remembering to pass --benchmark_out.  Explicit --benchmark_out
// flags still win.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  std::string binary = argv[0];
  const auto slash = binary.find_last_of('/');
  if (slash != std::string::npos) binary = binary.substr(slash + 1);

  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }

  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag;
  if (!has_out) {
    out_flag = "--benchmark_out=BENCH_" + binary + ".json";
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
