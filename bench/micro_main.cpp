// Shared main() for the micro benchmarks.  Besides the console table, each
// binary always writes machine-readable JSON — BENCH_<binary>.json in the
// working directory — so the perf trajectory is tracked across PRs without
// anyone remembering to pass --benchmark_out.  Explicit --benchmark_out
// flags still win.
//
// Benchmarks that fail (SkipWithError — e.g. micro_recorder's <5% overhead
// guard) fail the whole binary with exit code 1, so CI smoke runs catch
// budget violations instead of printing them and passing.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace {

class FailureTrackingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) failed_ = true;
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] bool failed() const { return failed_; }

 private:
  bool failed_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::string binary = argv[0];
  const auto slash = binary.find_last_of('/');
  if (slash != std::string::npos) binary = binary.substr(slash + 1);

  // Match --benchmark_out exactly (bare or =value): the old 15-char prefix
  // test also matched --benchmark_out_format, so passing only the format
  // flag silently suppressed the default JSON artifact.
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--benchmark_out") == 0 ||
        std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
      has_out = true;
    }
  }

  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag;
  if (!has_out) {
    out_flag = "--benchmark_out=BENCH_" + binary + ".json";
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  FailureTrackingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return reporter.failed() ? 1 : 0;
}
