// Microbenchmark: one scheduling round (placement pass over a fresh
// cluster) for each policy, across cluster sizes.  Complements
// tab_overhead with a policy-by-policy comparison.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>

#include "bench_common.h"
#include "dollymp/workload/trace_model.h"

using namespace dollymp;
using namespace dollymp::bench;

namespace {

std::vector<JobSpec> step_jobs(int count) {
  TraceModelConfig config;
  config.max_tasks_per_phase = 50;
  TraceModel model(config, 9);
  return model.sample_jobs(count);
}

SimConfig step_config() {
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 9;
  config.background.enabled = false;
  return config;
}

void run_step(benchmark::State& state, const std::string& key) {
  DryRunContext ctx(Cluster::google_like(static_cast<std::size_t>(state.range(0))),
                    step_jobs(200), step_config());
  auto scheduler = make_scheduler(key);
  for (auto _ : state) {
    scheduler->reset();
    scheduler->on_job_arrival(ctx);
    scheduler->schedule(ctx);
    state.PauseTiming();
    ctx.reset_placements();
    state.ResumeTiming();
  }
  // Allocations per round from the copy-slab pool: fresh extents are
  // acquires - reuses.  After the first round warms the free lists, churn
  // should reuse extents rather than allocate (the counter tends to 0).
  const auto& slab = ctx.store().copy_slab().counters();
  state.counters["alloc_per_step"] =
      static_cast<double>(slab.acquires - slab.reuses) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
  state.counters["slab_blocks"] = static_cast<double>(slab.block_allocations);
}

// Same round, with the deterministic parallel core engaged: arg 1 is the
// SimConfig::threads value (1 = sequential, 0 = hardware concurrency).
void run_step_threads(benchmark::State& state, const std::string& key) {
  SimConfig config = step_config();
  config.threads = static_cast<int>(state.range(1));
  DryRunContext ctx(Cluster::google_like(static_cast<std::size_t>(state.range(0))),
                    step_jobs(200), config);
  auto scheduler = make_scheduler(key);
  for (auto _ : state) {
    scheduler->reset();
    scheduler->on_job_arrival(ctx);
    scheduler->schedule(ctx);
    state.PauseTiming();
    ctx.reset_placements();
    state.ResumeTiming();
  }
  ThreadPool* pool = ctx.worker_pool();
  state.counters["workers"] =
      static_cast<double>(pool != nullptr ? pool->size() : 1);
}

void BM_StepDollyMP(benchmark::State& state) { run_step(state, "dollymp2"); }
void BM_StepTetris(benchmark::State& state) { run_step(state, "tetris"); }
void BM_StepDrf(benchmark::State& state) { run_step(state, "drf"); }
void BM_StepCapacity(benchmark::State& state) { run_step(state, "capacity"); }
void BM_StepDollyMPThreads(benchmark::State& state) {
  run_step_threads(state, "dollymp2");
}

BENCHMARK(BM_StepDollyMP)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StepTetris)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StepDrf)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StepCapacity)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StepDollyMPThreads)
    ->Args({1000, 1})
    ->Args({1000, 0})
    ->Unit(benchmark::kMillisecond);

}  // namespace
