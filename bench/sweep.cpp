// Replication throughput of the experiment sweep driver
// (common/experiment.h): whole-run parallelism, the inter-run complement of
// parallel_step.cpp's intra-run series.  Emitted as BENCH_sweep.json.
//
// BM_SweepReplications/T runs a small but representative grid — 3 policies
// × {healthy, crash} × 3 seeds = 18 replications of a 60-job paper30
// workload — through run_sweep() with a T-worker pool.  items_per_second IS
// replications/sec (SetItemsProcessed counts replications), the figure the
// CI speedup-smoke job and EXPERIMENTS.md track.  Thread counts above the
// host's hardware concurrency are skipped at registration; threads=1 always
// runs as the serial baseline.  Wall-clock (real_time) and process CPU time
// (cpu_time) are both recorded, with the detected core count in `cores`.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>

#include "dollymp/common/experiment.h"
#include "dollymp/common/thread_pool.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

using namespace dollymp;

namespace {

SweepSpec make_spec() {
  SweepSpec spec;
  spec.cluster = Cluster::paper30();
  spec.base.slot_seconds = 5.0;
  spec.base.seed = 7;
  spec.base.background.enabled = false;

  TraceModel model({}, 7);
  spec.jobs = model.sample_jobs(60);
  assign_poisson_arrivals(spec.jobs, 15.0, 7);

  spec.policies.push_back({"dollymp2", [] {
                             DollyMPConfig config;
                             config.clone_budget = 2;
                             return std::make_unique<DollyMPScheduler>(config);
                           }});
  spec.policies.push_back({"capacity", [] { return std::make_unique<CapacityScheduler>(); }});
  spec.policies.push_back({"tetris", [] { return std::make_unique<TetrisScheduler>(); }});
  spec.fault_presets.push_back(make_fault_preset("healthy"));
  spec.fault_presets.push_back(make_fault_preset("crash"));
  spec.seeds = {7, 8, 9};
  return spec;
}

unsigned detected_cores() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void BM_SweepReplications(benchmark::State& state, int threads) {
  const SweepSpec spec = make_spec();
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads));
  std::size_t replications = 0;
  for (auto _ : state) {
    const SweepResult result = run_sweep(spec, pool.get());
    benchmark::DoNotOptimize(result.cells.data());
    replications = result.replications;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(replications) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["cores"] = static_cast<double>(detected_cores());
  state.counters["workers"] = static_cast<double>(pool ? pool->size() : 1);
  state.counters["replications"] = static_cast<double>(replications);
}

bool register_series() {
  const auto cores = static_cast<int>(detected_cores());
  for (const int threads : {1, 2, 4, 8}) {
    if (threads > 1 && threads > cores) continue;  // graceful skip
    benchmark::RegisterBenchmark(
        ("BM_SweepReplications/" + std::to_string(threads)).c_str(),
        [threads](benchmark::State& s) { BM_SweepReplications(s, threads); })
        ->Unit(benchmark::kMillisecond)
        ->MeasureProcessCPUTime()
        ->UseRealTime();
  }
  return true;
}

[[maybe_unused]] const bool kRegistered = register_series();

}  // namespace
