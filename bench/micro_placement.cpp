// Microbenchmark: the placement engine itself — steady-state churn of
// best-fit queries against the linear server scan vs the incremental
// free-capacity index, across cluster sizes from the paper's 30-node
// deployment to a 30K-server Google-trace-scale inventory.
//
// The driver holds cluster occupancy steady: each op releases the oldest
// live placement, then queries best-fit for the next demand and allocates
// on the winner, notifying the index after every allocation change exactly
// as the simulator does.  "copies/s" is the placement throughput the
// control plane can sustain at that scale; the indexed/linear ratio is the
// speedup the tentpole claims (>= 10x at 3K+ servers).
#include <benchmark/benchmark.h>

#include <array>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "dollymp/cluster/cluster.h"
#include "dollymp/cluster/placement_index.h"
#include "dollymp/sched/scheduler.h"

using namespace dollymp;

namespace {

// Exact-binary demands drawn from the trace model's granularity (integral
// CPUs, 0.5 GB memory steps) so allocate/release round-trips are lossless.
constexpr std::array<Resources, 5> kPalette = {
    {{1, 2}, {2, 8}, {4, 16}, {6, 12}, {8, 24}}};

constexpr int kOpsPerIter = 64;

void churn(benchmark::State& state, const bool use_index) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  Cluster cluster = Cluster::google_trace(servers);
  std::optional<PlacementIndex> index;
  if (use_index) index.emplace(cluster);

  // Prefill round-robin (no queries) to ~2 live copies per server, so the
  // measured queries scan a realistically fragmented cluster.
  std::deque<std::pair<ServerId, Resources>> live;
  for (std::size_t i = 0; i < servers * 2; ++i) {
    const Resources& demand = kPalette[i % kPalette.size()];
    const auto sid = static_cast<ServerId>(i % servers);
    if (!cluster.server(i % servers).can_fit(demand)) continue;
    cluster.server(i % servers).allocate(demand);
    if (index) index->on_allocation_changed(sid);
    live.emplace_back(sid, demand);
  }

  std::size_t next = 0;
  long long placed = 0;
  for (auto _ : state) {
    for (int op = 0; op < kOpsPerIter; ++op) {
      if (!live.empty()) {
        const auto [sid, freed] = live.front();
        live.pop_front();
        cluster.server(static_cast<std::size_t>(sid)).release(freed);
        if (index) index->on_allocation_changed(sid);
      }
      const Resources& demand = kPalette[next++ % kPalette.size()];
      const ServerId sid =
          use_index ? index->best_fit(demand) : best_fit_server(cluster, demand);
      benchmark::DoNotOptimize(sid);
      if (sid == kInvalidServer) continue;
      cluster.server(static_cast<std::size_t>(sid)).allocate(demand);
      if (index) index->on_allocation_changed(sid);
      live.emplace_back(sid, demand);
      ++placed;
    }
  }
  state.counters["copies/s"] = benchmark::Counter(
      static_cast<double>(placed), benchmark::Counter::kIsRate);
  if (index) {
    const auto& c = index->counters();
    state.counters["scan/query"] =
        c.queries > 0 ? static_cast<double>(c.servers_scanned) /
                            static_cast<double>(c.queries)
                      : 0.0;
  }
}

void BM_PlacementLinear(benchmark::State& state) { churn(state, false); }
void BM_PlacementIndexed(benchmark::State& state) { churn(state, true); }

BENCHMARK(BM_PlacementLinear)->Arg(30)->Arg(300)->Arg(3000)->Arg(30000);
BENCHMARK(BM_PlacementIndexed)->Arg(30)->Arg(300)->Arg(3000)->Arg(30000);

}  // namespace
