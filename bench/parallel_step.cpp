// Step throughput of the deterministic parallel scheduling core at trace
// scale: the acceptance benchmark for SimConfig::threads.
//
// Two series, swept over threads = 1, 2, 4, 8 and emitted as
// BENCH_parallel_step.json:
//
//   * BM_ParallelStep/30000/T — one scheduling round (priority oracle +
//     placement pass) for DollyMP^2 over the 30K-server google-trace
//     inventory, the Section 6.3 Resource-Manager-latency setting.
//   * BM_ParallelSimulate/30000/T — a full simulate() of a small workload
//     over the same fleet with the placement index and speculation passes
//     engaged, so every sharded site (priority recompute, round filter,
//     weighted walk, straggler scan) contributes.
//
// Thread counts above the host's hardware concurrency are skipped at
// registration (oversubscribed runs measure scheduler-induced context
// switching, not the sharded path) — on a single-core host only the
// threads=1 baseline runs and the speedup must be read from a multi-core
// run (see EXPERIMENTS.md).  Every series measures wall-clock (real_time,
// the primary column) AND process CPU time (cpu_time), so the JSON shows
// both the latency win and the parallelism cost; the `cores` counter
// records the detected hardware concurrency and `workers` the pool size
// the threads value resolved to.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

using namespace dollymp;
using namespace dollymp::bench;

namespace {

std::vector<JobSpec> fleet_jobs(int count, bool arrivals) {
  TraceModelConfig config;
  config.max_tasks_per_phase = 50;
  TraceModel model(config, 11);
  auto jobs = model.sample_jobs(count);
  if (arrivals) assign_poisson_arrivals(jobs, 10.0, 12);
  return jobs;
}

SimConfig fleet_config(int threads) {
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 11;
  config.background.enabled = false;
  config.threads = threads;
  return config;
}

unsigned detected_cores() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void BM_ParallelStep(benchmark::State& state, std::size_t servers, int threads) {
  DryRunContext ctx(Cluster::google_trace(servers), fleet_jobs(400, false),
                    fleet_config(threads));
  auto scheduler = make_scheduler("dollymp2");
  for (auto _ : state) {
    scheduler->reset();
    scheduler->on_job_arrival(ctx);
    scheduler->schedule(ctx);
    state.PauseTiming();
    ctx.reset_placements();
    state.ResumeTiming();
  }
  ThreadPool* pool = ctx.worker_pool();
  state.counters["cores"] = static_cast<double>(detected_cores());
  state.counters["workers"] = static_cast<double>(pool != nullptr ? pool->size() : 1);
  state.counters["par_sections"] = static_cast<double>(ctx.shard_stats()->sections);
}

void BM_ParallelSimulate(benchmark::State& state, std::size_t servers, int threads) {
  const Cluster cluster = Cluster::google_trace(servers);
  const auto jobs = fleet_jobs(40, true);
  const SimConfig config = fleet_config(threads);
  long long sections = 0;
  long long arena_grows = 0;
  double workers = 1.0;
  for (auto _ : state) {
    DollyMPConfig policy;
    policy.clone_budget = 2;
    policy.straggler_aware = true;
    DollyMPScheduler scheduler(policy);
    const SimResult result = simulate(cluster, config, jobs, scheduler);
    benchmark::DoNotOptimize(result.makespan_seconds);
    sections = result.stats.parallel_sections;
    arena_grows = result.stats.parallel_arena_grows;
    workers = static_cast<double>(result.stats.threads_resolved);
  }
  state.counters["cores"] = static_cast<double>(detected_cores());
  state.counters["workers"] = workers;
  state.counters["par_sections"] = static_cast<double>(sections);
  // Scratch-arena growths inside ONE run: warm-up only, never proportional
  // to the run length (the zero-steady-state-allocation claim).
  state.counters["arena_grows"] = static_cast<double>(arena_grows);
}

/// Register the threads = 1, 2, 4, 8 series, skipping counts the host
/// cannot back with real cores (threads=1 always runs as the baseline).
bool register_series() {
  const auto cores = static_cast<int>(detected_cores());
  for (const int threads : {1, 2, 4, 8}) {
    if (threads > 1 && threads > cores) continue;  // graceful skip
    const std::string suffix = "/30000/" + std::to_string(threads);
    benchmark::RegisterBenchmark(("BM_ParallelStep" + suffix).c_str(),
                                 [threads](benchmark::State& s) {
                                   BM_ParallelStep(s, 30000, threads);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->MeasureProcessCPUTime()
        ->UseRealTime();
    benchmark::RegisterBenchmark(("BM_ParallelSimulate" + suffix).c_str(),
                                 [threads](benchmark::State& s) {
                                   BM_ParallelSimulate(s, 30000, threads);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->MeasureProcessCPUTime()
        ->UseRealTime();
  }
  return true;
}

[[maybe_unused]] const bool kRegistered = register_series();

}  // namespace
