// Step throughput of the deterministic parallel scheduling core at trace
// scale: the acceptance benchmark for SimConfig::threads.
//
// Two series, each run at threads = 1 (sequential baseline) and threads =
// 0 (hardware concurrency), emitted as BENCH_parallel_step.json:
//
//   * BM_ParallelStep/30000/T — one scheduling round (priority oracle +
//     placement pass) for DollyMP^2 over the 30K-server google-trace
//     inventory, the Section 6.3 Resource-Manager-latency setting.
//   * BM_ParallelSimulate/30000/T — a full simulate() of a small workload
//     over the same fleet with the placement index and speculation passes
//     engaged, so every sharded site (priority recompute, round filter,
//     weighted walk, straggler scan) contributes.
//
// The `workers` counter reports the pool size the threads value resolved
// to — on a single-core host threads=0 resolves to one worker, the pool is
// dropped, and both series legitimately measure the sequential path (the
// speedup must then be read from a multi-core run; see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

using namespace dollymp;
using namespace dollymp::bench;

namespace {

std::vector<JobSpec> fleet_jobs(int count, bool arrivals) {
  TraceModelConfig config;
  config.max_tasks_per_phase = 50;
  TraceModel model(config, 11);
  auto jobs = model.sample_jobs(count);
  if (arrivals) assign_poisson_arrivals(jobs, 10.0, 12);
  return jobs;
}

SimConfig fleet_config(int threads) {
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 11;
  config.background.enabled = false;
  config.threads = threads;
  return config;
}

void BM_ParallelStep(benchmark::State& state) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  DryRunContext ctx(Cluster::google_trace(servers), fleet_jobs(400, false),
                    fleet_config(threads));
  auto scheduler = make_scheduler("dollymp2");
  for (auto _ : state) {
    scheduler->reset();
    scheduler->on_job_arrival(ctx);
    scheduler->schedule(ctx);
    state.PauseTiming();
    ctx.reset_placements();
    state.ResumeTiming();
  }
  ThreadPool* pool = ctx.worker_pool();
  state.counters["workers"] = static_cast<double>(pool != nullptr ? pool->size() : 1);
  state.counters["par_sections"] = static_cast<double>(ctx.shard_stats()->sections);
}

void BM_ParallelSimulate(benchmark::State& state) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Cluster cluster = Cluster::google_trace(servers);
  const auto jobs = fleet_jobs(40, true);
  const SimConfig config = fleet_config(threads);
  long long sections = 0;
  double workers = 1.0;
  for (auto _ : state) {
    DollyMPConfig policy;
    policy.clone_budget = 2;
    policy.straggler_aware = true;
    DollyMPScheduler scheduler(policy);
    const SimResult result = simulate(cluster, config, jobs, scheduler);
    benchmark::DoNotOptimize(result.makespan_seconds);
    sections = result.stats.parallel_sections;
    if (result.stats.parallel_sections > 0 && result.stats.parallel_shards > 0) {
      workers = static_cast<double>(result.stats.parallel_shards) /
                static_cast<double>(result.stats.parallel_sections);
    }
  }
  state.counters["par_sections"] = static_cast<double>(sections);
  state.counters["mean_shards"] = workers;
}

}  // namespace

// threads=4 is forced even on hosts with fewer cores: there it measures the
// dispatch overhead of the sharded path under oversubscription instead of a
// speedup — still worth tracking, and the equivalence suite guarantees the
// answer is the same either way.
BENCHMARK(BM_ParallelStep)
    ->Args({30000, 1})
    ->Args({30000, 0})
    ->Args({30000, 4})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelSimulate)
    ->Args({30000, 1})
    ->Args({30000, 0})
    ->Args({30000, 4})
    ->Unit(benchmark::kMillisecond);
