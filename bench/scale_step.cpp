// Scale gate for the struct-of-arrays overhaul: the simulator's memory and
// per-step cost across 30K / 300K / 1M-server google-trace inventories.
//
// Two series plus an explicit gate, emitted as BENCH_scale_step.json:
//
//   * BM_ScaleBuild/N — building the inventory (ServerTable appends with
//     model interning).  The bytes_per_server counter is the fleet's
//     resident footprint per row and must stay flat: the table is parallel
//     arrays, so there is nothing per-server that could grow with N.
//   * BM_ScaleStep/N — a full simulate() of a fixed workload over the
//     fleet.  The steps/s counter is the slot-processing rate; with the
//     placement index answering queries per *distinct allocation state*
//     and the event loop touching only active jobs, per-step latency must
//     grow far slower than the fleet (sub-linear).
//   * BM_ScaleGate — runs last (alphabetical registration does not matter;
//     it re-reads what the earlier series recorded) and fails the binary
//     (SkipWithError, exit 1 via micro_main) when bytes-per-server drifts
//     more than 10% across sizes or per-step latency scales worse than a
//     third of linear.
//
// CI runs the 300K series with an RSS ceiling (scale-smoke job); the 1M
// point documents headroom and runs in the full local sweep.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "dollymp/common/stats.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

using namespace dollymp;
using namespace dollymp::bench;

namespace {

constexpr std::int64_t kSizes[] = {30000, 300000, 1000000};

/// Fixed workload: the fleet grows, the work does not — so any growth in
/// step latency is layout overhead, not extra scheduling work.
std::vector<JobSpec> scale_jobs(int count) {
  TraceModelConfig config;
  config.max_tasks_per_phase = 50;
  TraceModel model(config, 17);
  auto jobs = model.sample_jobs(count);
  assign_poisson_arrivals(jobs, 10.0, 18);
  return jobs;
}

SimConfig scale_config() {
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 17;
  config.background.enabled = false;
  config.locality.enabled = false;
  return config;
}

/// What each size measured, for the gate benchmark.
struct ScalePoint {
  double bytes_per_server = 0.0;
  double us_per_step = 0.0;
};
std::map<std::int64_t, ScalePoint>& points() {
  static std::map<std::int64_t, ScalePoint> map;
  return map;
}

void BM_ScaleBuild(benchmark::State& state) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  double bytes_per_server = 0.0;
  for (auto _ : state) {
    const Cluster cluster = Cluster::google_trace(servers);
    bytes_per_server = static_cast<double>(cluster.table().memory_bytes()) /
                       static_cast<double>(servers);
    benchmark::DoNotOptimize(cluster.total_capacity());
  }
  points()[state.range(0)].bytes_per_server = bytes_per_server;
  state.counters["bytes_per_server"] = bytes_per_server;
  state.counters["servers/s"] = benchmark::Counter(
      static_cast<double>(servers), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_ScaleStep(benchmark::State& state) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  const Cluster cluster = Cluster::google_trace(servers);
  const auto jobs = scale_jobs(240);
  const SimConfig config = scale_config();
  SimStats last{};
  double us_per_step = 0.0;
  for (auto _ : state) {
    auto scheduler = make_scheduler("dollymp2");
    const SimResult result = simulate(cluster, config, jobs, *scheduler);
    benchmark::DoNotOptimize(result.makespan_seconds);
    last = result.stats;
    // wall_clock_seconds is taken inside run(), after the O(servers) setup
    // (cluster copy, index build, locality model) in the constructor — so
    // this is the event loop's own per-step cost.
    us_per_step = last.wall_clock_seconds * 1e6 /
                  static_cast<double>(std::max(1LL, last.slots_visited));
  }
  points()[state.range(0)].us_per_step = us_per_step;
  state.counters["steps"] = static_cast<double>(last.slots_visited);
  state.counters["us_per_step"] = us_per_step;
  state.counters["bytes_per_server"] = last.bytes_per_server;
  state.counters["table_mb"] =
      static_cast<double>(last.server_table_bytes) / (1024.0 * 1024.0);
  state.counters["store_mb"] =
      static_cast<double>(last.runtime_store_bytes) / (1024.0 * 1024.0);
  state.counters["rss_mb"] =
      static_cast<double>(last.peak_rss_bytes) / (1024.0 * 1024.0);
  state.counters["slab_blocks"] = static_cast<double>(last.copy_slab_blocks);
  // Allocations per step from the pool counters: fresh extents are
  // acquires - reuses; steady state should push this toward zero.
  state.counters["slab_alloc_per_step"] =
      static_cast<double>(last.copy_slab_acquires - last.copy_slab_reuses) /
      static_cast<double>(std::max(1LL, last.slots_visited));
}

/// The gate: consumes what the series recorded.  Only meaningful when the
/// full sweep ran (CI's filtered 300K smoke run skips it by name).
void BM_ScaleGate(benchmark::State& state) {
  for (auto _ : state) {
  }
  const auto& map = points();
  for (const std::int64_t size : kSizes) {
    if (map.find(size) == map.end() || map.at(size).bytes_per_server <= 0.0 ||
        map.at(size).us_per_step <= 0.0) {
      state.SkipWithError("gate needs the full 30K/300K/1M sweep first");
      return;
    }
  }
  const ScalePoint& small = map.at(kSizes[0]);
  for (const std::int64_t size : kSizes) {
    const ScalePoint& p = map.at(size);
    // Bytes per server flat within 10% of the 30K point.
    const double drift = p.bytes_per_server / small.bytes_per_server;
    if (drift < 0.9 || drift > 1.1) {
      state.SkipWithError("bytes_per_server drifted >10% across fleet sizes");
      return;
    }
    // Per-step latency sub-linear: a 33x fleet may cost at most a third of
    // the linear 33x (noise floor of 3x for the small ratios).
    const double fleets = static_cast<double>(size) / static_cast<double>(kSizes[0]);
    const double slowdown = p.us_per_step / small.us_per_step;
    if (slowdown > std::max(3.0, fleets / 3.0)) {
      state.SkipWithError("per-step latency scaled superlinearly with fleet size");
      return;
    }
    state.counters["x" + std::to_string(size / 1000) + "k_step"] = slowdown;
    state.counters["x" + std::to_string(size / 1000) + "k_bytes"] = drift;
  }
}

}  // namespace

BENCHMARK(BM_ScaleBuild)
    ->Arg(30000)
    ->Arg(300000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScaleStep)
    ->Arg(30000)
    ->Arg(300000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScaleGate);
