// Figure 11: DollyMP^2 against the state-of-the-art altruistic scheduler
// Carbyne, heavily loaded.
//
// Paper: ~30% of jobs complete >80% faster under DollyMP^2; ~60% of jobs
// consume the same resources under both; average completion time ~25%
// lower than Carbyne.
//
// Workload note (see EXPERIMENTS.md): the paper runs this on its
// trace-driven simulator.  Our synthetic Google-trace model has a wider
// task-duration spread than the real trace, which favours volume-ordered
// baselines and washes out the comparison; we therefore use the calibrated
// heavily-loaded deployment workload (500 PageRank jobs, ~20 s gaps, the
// Figs. 5-7 setup), which matches the load regime the paper describes.
#include <iostream>

#include "heavy_load.h"

using namespace dollymp;
using namespace dollymp::bench;

int main() {
  const SimResult dollymp = heavy_run("pagerank", "dollymp2");
  const SimResult carbyne = heavy_run("pagerank", "carbyne");

  const PairedRatios ratios = paired_ratios(dollymp, carbyne);
  print_cdf_figure("Figure 11a: per-job completion-time ratio, DollyMP^2 / Carbyne",
                   {{"flow_ratio", ratios.flowtime_ratio}});
  print_cdf_figure("Figure 11b: per-job resource-usage ratio, DollyMP^2 / Carbyne",
                   {{"resource_ratio", ratios.resource_ratio}});

  const double frac80 = ratios.fraction_flowtime_reduced_by(0.80);
  const double frac50 = ratios.fraction_flowtime_reduced_by(0.50);
  std::cout << "jobs >=80% faster: " << frac80 << "   jobs >=50% faster: " << frac50
            << "\n";
  shape_check("Fig11a: a meaningful share of jobs finish far faster under DollyMP^2 "
              "(paper: ~30% of jobs >80% faster)",
              frac80, frac80 > 0.03);

  // "Same resources" band +/-20%: clone kill times and locality penalties
  // jitter per-copy durations even for never-cloned jobs.
  const double same_resources = ratios.resource_ratio.fraction_at_most(1.2) -
                                ratios.resource_ratio.fraction_at_most(0.8);
  shape_check("Fig11b: many jobs consume roughly equal resources (paper: ~60%)",
              same_resources, same_resources > 0.4);

  const double mean_cut = mean_flowtime_reduction(dollymp, carbyne);
  shape_check("Fig11: average completion time below Carbyne (paper: ~25%)", mean_cut,
              mean_cut > 0.10);
  return 0;
}
