// Figure 5: running-time CDF per application in the heavily-loaded regime
// (500 jobs, ~20 s inter-arrival).  Paper: under DollyMP all jobs complete
// within ~200 s once scheduled, while only ~80% do under Tetris — because
// once DollyMP schedules a job, most of its tasks run simultaneously, so
// running time looks like the lightly-loaded regime.
#include <iostream>

#include "heavy_load.h"

using namespace dollymp;
using namespace dollymp::bench;

int main() {
  for (const std::string app : {"pagerank", "wordcount"}) {
    std::vector<std::pair<std::string, Cdf>> series;
    Cdf dollymp_cdf;
    Cdf tetris_cdf;
    for (const std::string key : {"capacity", "tetris", "dollymp2"}) {
      const SimResult result = heavy_run(app, key);
      Cdf cdf = running_time_cdf(result);
      if (key == "dollymp2") dollymp_cdf = cdf;
      if (key == "tetris") tetris_cdf = cdf;
      series.emplace_back(key, std::move(cdf));
    }
    print_cdf_figure("Figure 5 (" + app + "): running-time CDF, heavy load", series);

    // Shape: at DollyMP's p95 running time, Tetris has completed fewer
    // jobs (the paper quotes 100% vs 80% at 200 s; p95 avoids single-job
    // tail noise).
    const double cut = dollymp_cdf.quantile(0.95);
    const double tetris_frac = tetris_cdf.fraction_at_most(cut);
    shape_check("Fig5 (" + app + "): Tetris completes fewer jobs within DollyMP^2's "
                "p95 running time",
                tetris_frac, tetris_frac < 0.945);
    shape_check("Fig5 (" + app + "): DollyMP^2 median running time below Tetris's",
                dollymp_cdf.median() / tetris_cdf.median(),
                dollymp_cdf.median() <= tetris_cdf.median());
  }
  return 0;
}
