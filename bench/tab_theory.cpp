// Section 4 analysis tables.
//
// (1) The Section 4.1 worked example: flow1/flow2/flow3 across Pareto
//     shapes and job counts — flow3 < flow1 < flow2 whenever the paper's
//     conditions hold, i.e. a couple of clones targeted at small jobs beat
//     both conservative and aggressive cloning.
// (2) Theorem 1: empirical competitive ratio of Algorithm 1 (DollyMP^0,
//     single server, batch single-task jobs, deterministic durations,
//     R = 1) against the best permutation schedule — always <= 6.
// (3) The sigma-factor r ablation from DESIGN.md: sweep r in the effective
//     length e = theta + r*sigma on a straggler-heavy workload.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <numeric>

#include "bench_common.h"
#include "dollymp/common/distributions.h"
#include "dollymp/common/rng.h"
#include "dollymp/common/table.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

using namespace dollymp;
using namespace dollymp::bench;

namespace {

double flow1(int n, const SpeedupFunction& h) { return n - 1.0 + 1.0 / h(2.0); }

double flow2(int n, const SpeedupFunction& h) {
  double total = 0.0;
  for (int j = 1; j <= n; ++j) total += j / h(std::ldexp(1.0, j));
  return total;
}

double flow3(int n, const SpeedupFunction& h) { return (n + 1.0) / h(2.0); }

bool section41_table() {
  std::cout << banner("Section 4.1: expected flowtime of the three cloning schemes");
  ConsoleTable table({"alpha", "N", "flow1_clone_last", "flow2_aggressive",
                      "flow3_two_clones_smallest_first", "ordering"});
  bool all_hold = true;
  for (const double alpha : {1.5, 2.0, 2.5, 3.0}) {
    const SpeedupFunction h(alpha);
    const int n = std::max(8, static_cast<int>(std::ceil(2.0 * alpha)) + 2);
    const double f1 = flow1(n, h);
    const double f2 = flow2(n, h);
    const double f3 = flow3(n, h);
    const bool holds = f3 < f1 && f1 < f2;
    all_hold = all_hold && holds;
    table.add_row({ConsoleTable::format_double(alpha, 1), std::to_string(n),
                   ConsoleTable::format_double(f1, 2), ConsoleTable::format_double(f2, 2),
                   ConsoleTable::format_double(f3, 2),
                   holds ? "flow3 < flow1 < flow2" : "VIOLATED"});
  }
  std::cout << table.render();
  return all_hold;
}

double permutation_best_flowtime(const std::vector<Resources>& demands,
                                 const std::vector<SimTime>& durations) {
  const int n = static_cast<int>(demands.size());
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    SimTime horizon = 0;
    for (const auto d : durations) horizon += d;
    std::vector<Resources> used(static_cast<std::size_t>(horizon) + 1);
    double total = 0.0;
    for (const int j : perm) {
      SimTime start = 0;
      for (;;) {
        bool fits = true;
        for (SimTime t = start; t < start + durations[j]; ++t) {
          if (!(used[static_cast<std::size_t>(t)] + demands[j]).fits_within({1, 1})) {
            fits = false;
            break;
          }
        }
        if (fits) break;
        ++start;
      }
      for (SimTime t = start; t < start + durations[j]; ++t) {
        used[static_cast<std::size_t>(t)] += demands[j];
      }
      total += static_cast<double>(start + durations[j]);
    }
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

void theorem1_table() {
  std::cout << banner("Theorem 1: empirical competitive ratio of Algorithm 1 (bound: 6R, R=1)");
  ConsoleTable table({"trial_group", "instances", "worst_ratio", "mean_ratio", "bound_ok"});
  Rng rng(123);
  const double grid[] = {0.25, 0.5, 1.0};
  for (int group = 0; group < 4; ++group) {
    double worst = 0.0;
    double sum = 0.0;
    const int trials = 25;
    for (int trial = 0; trial < trials; ++trial) {
      const int n = static_cast<int>(rng.range(3, 6));
      std::vector<Resources> demands;
      std::vector<SimTime> durations;
      std::vector<JobSpec> jobs;
      for (int j = 0; j < n; ++j) {
        const Resources d{grid[rng.below(3)], grid[rng.below(3)]};
        const auto t = static_cast<SimTime>(rng.range(1, 4));
        demands.push_back(d);
        durations.push_back(t);
        jobs.push_back(JobSpec::single_task(j, d, static_cast<double>(t), 0.0));
      }
      const double opt = permutation_best_flowtime(demands, durations);

      SimConfig config;
      config.slot_seconds = 1.0;
      config.seed = 1;
      config.model = ExecutionModel::kWorkBased;
      config.background.enabled = false;
      config.locality.enabled = false;
      DollyMPScheduler d0{DollyMPConfig{0}};
      const SimResult result = simulate(Cluster::single({1, 1}), config, jobs, d0);
      const double ratio = result.total_flowtime() / opt;
      worst = std::max(worst, ratio);
      sum += ratio;
    }
    table.add_labeled_row("group" + std::to_string(group),
                          {static_cast<double>(trials), worst, sum / trials,
                           worst <= 6.0 ? 1.0 : 0.0},
                          2);
  }
  std::cout << table.render();
}

void sigma_factor_ablation() {
  std::cout << banner("Ablation: sigma factor r in e = theta + r*sigma (default 1.5)");
  TraceModelConfig tm;
  tm.max_tasks_per_phase = 60;
  TraceModel model(tm, 55);
  auto jobs = model.sample_jobs(150);
  assign_poisson_arrivals(jobs, 10.0, 56);
  const Cluster cluster = Cluster::google_like(60);

  ConsoleTable table({"r", "total_flowtime_s", "mean_flowtime_s"});
  for (const double r : {0.0, 0.5, 1.0, 1.5, 2.0, 3.0}) {
    DollyMPConfig dc;
    dc.sigma_factor = r;
    DollyMPScheduler scheduler(dc);
    SimConfig config = deployment_config(55);
    config.sigma_factor = r;
    const SimResult result = simulate(cluster, config, jobs, scheduler);
    table.add_labeled_row(ConsoleTable::format_double(r, 1),
                          {result.total_flowtime(), result.mean_flowtime()}, 0);
  }
  std::cout << table.render();
}

}  // namespace

int main() {
  const bool ordering_holds = section41_table();
  theorem1_table();
  sigma_factor_ablation();
  shape_check("Sec 4.1: flow3 < flow1 < flow2 across all tabulated shapes",
              ordering_holds ? 1.0 : 0.0, ordering_holds);
  return 0;
}
