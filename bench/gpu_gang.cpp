// GPU gang-scheduling acceptance bench: the mixed ML/analytics scenario
// (Cluster::gpu_pods + make_mltrain gang phases over the trace-model
// analytics stream) must place gangs atomically at a useful rate.
//
// Emitted as BENCH_gpu_gang.json (micro_main):
//
//   * BM_GangPlacementThroughput — end-to-end simulation rate of the gpu
//     scenario under DollyMP, with gang waves/rollbacks surfaced as
//     counters (the probe/rollback protocol sits on the placement path, so
//     its cost shows up directly here).
//   * BM_GpuGangGate — the gate.  Runs the scenario under DollyMP and the
//     capacity baseline, then fails (SkipWithError, exit 1 via micro_main)
//     unless: (a) completion — every job in the mix finishes; (b)
//     atomicity accounting — on a healthy run every committed wave carries
//     the full world size, so gang_tasks_placed == gangs_placed *
//     world_size; (c) conservation — no leaked allocations or active
//     copies at run end; (d) throughput — gang task placements per wall
//     second stay above a floor loose enough for sanitizer builds.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dollymp/cluster/cluster.h"
#include "dollymp/workload/apps.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

using namespace dollymp;
using namespace dollymp::bench;

namespace {

constexpr int kTrainJobs = 16;
constexpr int kAnalyticsJobs = 48;
constexpr int kServers = 64;

/// The gpu scenario workload: an analytics stream contending with
/// gang-scheduled trainers (world size 8, 4 chained steps each).
std::vector<JobSpec> gpu_mix(std::uint64_t seed) {
  TraceModel model({}, seed);
  std::vector<JobSpec> jobs = model.sample_jobs(kAnalyticsJobs);
  assign_poisson_arrivals(jobs, 20.0, seed + 1);
  std::vector<JobSpec> trainers;
  trainers.reserve(kTrainJobs);
  for (int k = 0; k < kTrainJobs; ++k) {
    trainers.push_back(make_mltrain(static_cast<JobId>(kAnalyticsJobs + k)));
  }
  assign_poisson_arrivals(trainers, 80.0, seed + 2);
  jobs.insert(jobs.end(), trainers.begin(), trainers.end());
  return jobs;
}

SimConfig gpu_config(std::uint64_t seed) {
  SimConfig config = deployment_config(seed);
  config.resource_dims = 3;
  return config;
}

void BM_GangPlacementThroughput(benchmark::State& state) {
  const Cluster cluster = Cluster::gpu_pods(kServers);
  const std::vector<JobSpec> jobs = gpu_mix(11);
  long long gangs = 0;
  long long gang_tasks = 0;
  long long rollbacks = 0;
  for (auto _ : state) {
    const SimResult result = run_workload(cluster, gpu_config(11), jobs, "dollymp2");
    benchmark::DoNotOptimize(result.makespan_seconds);
    gangs += result.stats.gangs_placed;
    gang_tasks += result.stats.gang_tasks_placed;
    rollbacks += result.stats.gang_rollbacks;
  }
  state.counters["gangs/iter"] =
      static_cast<double>(gangs) / static_cast<double>(state.iterations());
  state.counters["rollbacks/iter"] =
      static_cast<double>(rollbacks) / static_cast<double>(state.iterations());
  state.counters["gang_tasks/s"] =
      benchmark::Counter(static_cast<double>(gang_tasks), benchmark::Counter::kIsRate);
}

void BM_GpuGangGate(benchmark::State& state) {
  const Cluster cluster = Cluster::gpu_pods(kServers);
  const std::vector<JobSpec> jobs = gpu_mix(11);
  const MlTrainConfig train;  // defaults drive make_mltrain above
  for (auto _ : state) {
    for (const char* key : {"dollymp2", "capacity"}) {
      const SimResult result = run_workload(cluster, gpu_config(11), jobs, key);
      const SimStats& stats = result.stats;
      const std::string tag = std::string(" [") + key + "]";

      // (a) Completion: the scenario must drain — every job in the mix,
      // trainers included, finishes after it arrives.
      state.counters["jobs_" + std::string(key)] =
          static_cast<double>(result.jobs.size());
      if (result.jobs.size() != jobs.size()) {
        state.SkipWithError(("gpu gang gate: jobs lost" + tag).c_str());
        return;
      }
      for (const JobRecord& job : result.jobs) {
        if (job.finish_seconds < job.arrival_seconds) {
          state.SkipWithError(("gpu gang gate: unfinished job" + tag).c_str());
          return;
        }
      }

      // (b) Atomicity accounting: healthy run, so phases only ever expose
      // their full world to a wave — any committed wave smaller than the
      // world size means a partial gang slipped through.
      state.counters["gangs_" + std::string(key)] =
          static_cast<double>(stats.gangs_placed);
      state.counters["splits_" + std::string(key)] =
          static_cast<double>(stats.gangs_split_across_racks);
      const long long expected_waves =
          static_cast<long long>(kTrainJobs) * train.steps;
      if (stats.gangs_placed != expected_waves) {
        state.SkipWithError(("gpu gang gate: wave count off" + tag).c_str());
        return;
      }
      if (stats.gang_tasks_placed != stats.gangs_placed * train.world_size) {
        state.SkipWithError(("gpu gang gate: partial gang committed" + tag).c_str());
        return;
      }

      // (c) Conservation: probe/rollback must not leak — nothing still
      // allocated or active once the run drains.
      if (stats.leaked_cpu != 0.0 || stats.leaked_mem != 0.0 ||
          stats.leaked_active_copies != 0) {
        state.SkipWithError(("gpu gang gate: allocation leak" + tag).c_str());
        return;
      }

      // (d) Throughput floor: gang task placements per wall second.  The
      // floor is deliberately loose — it catches an accidentally quadratic
      // probe loop, not build-flavor noise (CI runs this under ASan/UBSan).
      const double rate = static_cast<double>(stats.gang_tasks_placed) /
                          std::max(1.0e-9, stats.wall_clock_seconds);
      state.counters["gang_tasks_per_s_" + std::string(key)] = rate;
      if (rate < 25.0) {
        state.SkipWithError(("gpu gang gate: placement throughput floor" + tag).c_str());
        return;
      }
    }
  }
}

}  // namespace

BENCHMARK(BM_GangPlacementThroughput)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GpuGangGate)->Unit(benchmark::kMillisecond)->Iterations(1);
