// Shared setup for the heavily-loaded experiments of Figs. 5-7: 500
// PageRank jobs in one experiment and 500 WordCount jobs in the other,
// inter-arrival around 20 seconds, on the 30-node cluster (Section 6.2.2).
#pragma once

#include "bench_common.h"
#include "dollymp/workload/arrivals.h"

namespace dollymp::bench {

inline constexpr int kHeavyJobs = 500;
// The paper's inter-arrival: "around 20 seconds".  With tasks calibrated to
// the Fig. 1 scale this drives the 30-node cluster to ~85-95% load, the
// regime where flowtimes decouple from running times (Figs. 6-7).
inline constexpr double kHeavyGapSeconds = 20.0;

inline std::vector<JobSpec> heavy_jobs(const std::string& app, std::uint64_t seed) {
  auto jobs = app == "pagerank" ? pagerank_suite(kHeavyJobs, seed)
                                : wordcount_suite(kHeavyJobs, seed);
  assign_jittered_arrivals(jobs, kHeavyGapSeconds, 0.25, seed + 17);
  return jobs;
}

inline SimResult heavy_run(const std::string& app, const std::string& scheduler_key) {
  const Cluster cluster = Cluster::paper30();
  return run_workload(cluster, deployment_config(2022), heavy_jobs(app, 2022),
                      scheduler_key);
}

}  // namespace dollymp::bench
