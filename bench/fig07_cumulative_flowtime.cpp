// Figure 7: cumulative total flowtime as jobs arrive, per application, in
// the heavily-loaded regime.  Paper: DollyMP ends ~50% below the Capacity
// scheduler and ~30% below Tetris.
#include <iostream>

#include "dollymp/common/table.h"
#include "heavy_load.h"

using namespace dollymp;
using namespace dollymp::bench;

int main() {
  for (const std::string app : {"pagerank", "wordcount"}) {
    std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>> curves;
    double capacity_total = 0.0;
    double tetris_total = 0.0;
    double dollymp_total = 0.0;
    for (const std::string key : {"capacity", "tetris", "dollymp2"}) {
      const SimResult result = heavy_run(app, key);
      curves.emplace_back(key, cumulative_flowtime_series(result));
      if (key == "capacity") capacity_total = result.total_flowtime();
      if (key == "tetris") tetris_total = result.total_flowtime();
      if (key == "dollymp2") dollymp_total = result.total_flowtime();
    }

    std::cout << banner("Figure 7 (" + app + "): cumulative flowtime over arrivals");
    ConsoleTable table({"arrivals", "capacity", "tetris", "dollymp2"});
    const std::size_t n = curves[0].second.size();
    for (std::size_t frac = 1; frac <= 10; ++frac) {
      const std::size_t idx = std::min(n - 1, frac * n / 10);
      table.add_labeled_row(std::to_string(idx + 1),
                            {curves[0].second[idx].second, curves[1].second[idx].second,
                             curves[2].second[idx].second},
                            0);
    }
    std::cout << table.render();

    const double vs_capacity = 1.0 - dollymp_total / capacity_total;
    const double vs_tetris = 1.0 - dollymp_total / tetris_total;
    shape_check("Fig7 (" + app + "): DollyMP total flowtime well below Capacity "
                "(~50% in paper)",
                vs_capacity, vs_capacity > 0.25);
    shape_check("Fig7 (" + app + "): DollyMP total flowtime below Tetris "
                "(~30% in paper; our Tetris lacks YARN overheads, see EXPERIMENTS.md)",
                vs_tetris, vs_tetris > 0.05);
  }
  return 0;
}
