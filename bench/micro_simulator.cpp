// Microbenchmark: end-to-end simulator throughput — full runs per second
// and copies simulated per second across workload scales and execution
// models.  This bounds how large a trace the harness can replay in
// reasonable wall-clock time.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

using namespace dollymp;
using namespace dollymp::bench;

namespace {

std::vector<JobSpec> sim_jobs(int count, std::uint64_t seed) {
  TraceModelConfig config;
  config.max_tasks_per_phase = 100;
  TraceModel model(config, seed);
  auto jobs = model.sample_jobs(count);
  assign_poisson_arrivals(jobs, 5.0, seed + 1);
  return jobs;
}

void BM_SimulatorStochastic(benchmark::State& state) {
  const auto jobs = sim_jobs(static_cast<int>(state.range(0)), 3);
  const Cluster cluster = Cluster::google_like(100);
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 3;
  long long copies = 0;
  SimStats stats{};
  for (auto _ : state) {
    DollyMPScheduler scheduler;
    const SimResult result = simulate(cluster, config, jobs, scheduler);
    copies = result.total_copies_launched;
    stats = result.stats;
    benchmark::DoNotOptimize(result.total_flowtime());
  }
  state.counters["copies"] = static_cast<double>(copies);
  state.counters["copies/s"] = benchmark::Counter(
      static_cast<double>(copies) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  // Pool traffic per simulated slot: fresh copy-slab extents (acquires that
  // missed the free lists) — the run's steady-state allocation rate.
  state.counters["alloc_per_step"] =
      static_cast<double>(stats.copy_slab_acquires - stats.copy_slab_reuses) /
      static_cast<double>(std::max(1LL, stats.slots_visited));
}
BENCHMARK(BM_SimulatorStochastic)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

// Same end-to-end run at a 1,000-server inventory: the scale where the
// placement index starts to dominate over the linear scan.
void BM_SimulatorStochasticLargeCluster(benchmark::State& state) {
  const auto jobs = sim_jobs(static_cast<int>(state.range(0)), 9);
  const Cluster cluster = Cluster::google_like(1000);
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 9;
  for (auto _ : state) {
    DollyMPScheduler scheduler;
    const SimResult result = simulate(cluster, config, jobs, scheduler);
    benchmark::DoNotOptimize(result.total_flowtime());
  }
}
BENCHMARK(BM_SimulatorStochasticLargeCluster)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_SimulatorWorkBased(benchmark::State& state) {
  const auto jobs = sim_jobs(static_cast<int>(state.range(0)), 5);
  const Cluster cluster = Cluster::google_like(100);
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 5;
  config.model = ExecutionModel::kWorkBased;
  for (auto _ : state) {
    DollyMPScheduler scheduler;
    const SimResult result = simulate(cluster, config, jobs, scheduler);
    benchmark::DoNotOptimize(result.total_flowtime());
  }
}
BENCHMARK(BM_SimulatorWorkBased)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_SimulatorWithFailures(benchmark::State& state) {
  const auto jobs = sim_jobs(200, 7);
  const Cluster cluster = Cluster::google_like(100);
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 7;
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = 600.0;
  config.failures.mean_repair_seconds = 120.0;
  for (auto _ : state) {
    DollyMPScheduler scheduler;
    const SimResult result = simulate(cluster, config, jobs, scheduler);
    benchmark::DoNotOptimize(result.total_flowtime());
  }
}
BENCHMARK(BM_SimulatorWithFailures)->Unit(benchmark::kMillisecond);

}  // namespace
