// Service-mode acceptance bench: streaming ingest throughput, snapshot and
// restore latency at the 30K-server trace scale, and the memory gate the
// streaming design exists for — resident spec/store footprint must track
// LIVE jobs, not total arrivals, over a stream many times longer than the
// peak live-job population.
//
// Emitted as BENCH_service_stream.json (micro_main):
//
//   * BM_ServiceIngest — arrivals/sec through a full Session pump
//     (ArrivalSource sampling + core ingest + event-loop progress) on the
//     30K google-trace fleet.
//   * BM_ServiceSnapshot / BM_ServiceRestore — checkpoint() file write and
//     Session::restore() latency for a warm mid-run session.
//   * BM_ServiceMemoryGate — runs a long stream whose total arrivals exceed
//     the peak live-job count by >= 10x, sampling retained specs and store
//     bytes each window; fails (SkipWithError, exit 1 via micro_main) if
//     late-stream retention drifts more than 10% above the mid-stream
//     steady state — i.e. if memory follows arrivals instead of live jobs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dollymp/common/state_io.h"
#include "dollymp/service/session.h"

using namespace dollymp;
using namespace dollymp::bench;

namespace {

constexpr std::size_t kServers = 30000;

ServiceConfig stream_config() {
  ServiceConfig config;
  config.policy = "dollymp2";
  config.sim.seed = 17;
  config.arrivals.rate_per_second = 4.0;
  config.arrivals.mean_input_gb = 1.0;
  config.arrivals.seed = 17;
  return config;
}

std::string bench_temp(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

void BM_ServiceIngest(benchmark::State& state) {
  const Cluster cluster = Cluster::google_trace(kServers);
  const SimTime horizon = state.range(0);
  std::int64_t ingested = 0;
  for (auto _ : state) {
    Session session(cluster, stream_config());
    session.run_until(horizon);
    ingested = session.totals().jobs_ingested;
    benchmark::DoNotOptimize(session.stream_hash());
  }
  state.counters["jobs"] = static_cast<double>(ingested);
  state.counters["arrivals/s"] = benchmark::Counter(
      static_cast<double>(ingested), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_ServiceSnapshot(benchmark::State& state) {
  const Cluster cluster = Cluster::google_trace(kServers);
  Session session(cluster, stream_config());
  session.run_until(state.range(0));
  const std::string path = bench_temp("BENCH_service_stream.ckpt");
  std::size_t bytes = 0;
  for (auto _ : state) {
    session.checkpoint(path);
    bytes = read_state_file(path).size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["snapshot_mb"] = static_cast<double>(bytes) / (1024.0 * 1024.0);
  state.counters["live_jobs"] = static_cast<double>(session.live_jobs());
}

void BM_ServiceRestore(benchmark::State& state) {
  const Cluster cluster = Cluster::google_trace(kServers);
  const ServiceConfig config = stream_config();
  Session session(cluster, config);
  session.run_until(state.range(0));
  const std::string path = bench_temp("BENCH_service_stream.ckpt");
  session.checkpoint(path);
  std::uint64_t hash = 0;
  for (auto _ : state) {
    auto restored = Session::restore(cluster, config, path);
    hash = restored->stream_hash();
    benchmark::DoNotOptimize(hash);
  }
  if (hash != session.stream_hash()) {
    state.SkipWithError("restored stream hash does not match the checkpoint point");
  }
}

/// The gate.  Uses the paper30 cluster so a long stream stays cheap: the
/// point is arrival volume vs. retention, not fleet scale.
void BM_ServiceMemoryGate(benchmark::State& state) {
  for (auto _ : state) {
    ServiceConfig config = stream_config();
    config.arrivals.rate_per_second = 0.25;
    Session session(Cluster::paper30(), config);

    // Sample cadence (200 slots) is deliberately coprime-ish to the pump
    // chunk (256 slots) so the samples sweep the segment-reap cycle instead
    // of aliasing onto one phase of it.
    constexpr SimTime kWindow = 200;
    constexpr int kWindows = 64;
    std::size_t peak_live = 0;
    std::vector<std::size_t> retained;
    std::vector<std::size_t> store_bytes;
    for (int i = 0; i < kWindows; ++i) {
      session.run_until(static_cast<SimTime>(i + 1) * kWindow);
      peak_live = std::max(peak_live, static_cast<std::size_t>(session.live_jobs()));
      retained.push_back(session.specs_retained());
      store_bytes.push_back(session.store_memory_bytes());
    }
    const auto total = static_cast<std::size_t>(session.totals().jobs_ingested);
    state.counters["jobs_total"] = static_cast<double>(total);
    state.counters["peak_live"] = static_cast<double>(peak_live);
    state.counters["retained_last"] = static_cast<double>(retained.back());
    state.counters["store_mb_last"] =
        static_cast<double>(store_bytes.back()) / (1024.0 * 1024.0);

    // The stream must dwarf the live population for the gate to mean
    // anything: >= 10x more total arrivals than peak live jobs.
    if (total < 10 * std::max<std::size_t>(1, peak_live)) {
      state.SkipWithError("stream too short: total arrivals < 10x peak live jobs");
      return;
    }
    // Steady state once the recycled-slot shape vocabulary has saturated:
    // compare the third quarter of the stream against the last quarter.
    // The late windows must not drift above the steady state by more than
    // 10% — flat memory while arrivals keep coming.
    auto mean_of = [](const std::vector<std::size_t>& v, int from, int to) {
      double sum = 0.0;
      for (int i = from; i < to; ++i) sum += static_cast<double>(v[static_cast<std::size_t>(i)]);
      return sum / std::max(1, to - from);
    };
    const double mid_retained = mean_of(retained, kWindows / 2, 3 * kWindows / 4);
    const double late_retained = mean_of(retained, 3 * kWindows / 4, kWindows);
    const double mid_store = mean_of(store_bytes, kWindows / 2, 3 * kWindows / 4);
    const double late_store = mean_of(store_bytes, 3 * kWindows / 4, kWindows);
    state.counters["retained_drift"] = late_retained / std::max(1.0, mid_retained);
    state.counters["store_drift"] = late_store / std::max(1.0, mid_store);
    if (late_retained > 1.1 * std::max(1.0, mid_retained)) {
      state.SkipWithError("retained specs drifted >10% — memory tracks arrivals");
      return;
    }
    if (late_store > 1.1 * std::max(1.0, mid_store)) {
      state.SkipWithError("store bytes drifted >10% — memory tracks arrivals");
      return;
    }
  }
}

}  // namespace

BENCHMARK(BM_ServiceIngest)->Arg(600)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServiceSnapshot)->Arg(600)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServiceRestore)->Arg(600)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServiceMemoryGate)->Unit(benchmark::kMillisecond);
