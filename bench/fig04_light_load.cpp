// Figure 4: lightly-loaded regime.  100 jobs (half PageRank — itself half
// 10 GB / half 1 GB inputs — and half 10 GB WordCount), inter-arrival time
// around 200 seconds, on the 30-node cluster.
//
//   (a) overall job flowtime per scheduler — DollyMP^2 ~10% below Capacity;
//   (b) CDF of job execution times — 95% of jobs under 350 s with DollyMP^2
//       vs ~80% under Capacity; DollyMP^2 beats DollyMP^1.
#include <iostream>

#include "bench_common.h"
#include "dollymp/workload/arrivals.h"

using namespace dollymp;
using namespace dollymp::bench;

int main() {
  const Cluster cluster = Cluster::paper30();
  auto jobs = paper_app_mix(100, 42);
  assign_jittered_arrivals(jobs, 200.0, 0.25, 7);

  const std::vector<std::string> schedulers = {"capacity", "tetris", "dollymp0",
                                               "dollymp1", "dollymp2"};
  std::vector<SimResult> results;
  std::vector<std::pair<std::string, Cdf>> run_cdfs;
  for (const auto& key : schedulers) {
    results.push_back(run_workload(cluster, deployment_config(42), jobs, key));
    run_cdfs.emplace_back(key, running_time_cdf(results.back()));
  }

  print_flowtime_table("Figure 4a: total job flowtime, lightly loaded (100 jobs, ~200s gap)",
                       results);
  print_cdf_figure("Figure 4b: job execution time CDF (seconds at each decile)", run_cdfs);

  const SimResult& capacity = results[0];
  const SimResult& dollymp1 = results[3];
  const SimResult& dollymp2 = results[4];

  const double reduction = mean_flowtime_reduction(dollymp2, capacity);
  shape_check("Fig4a: DollyMP^2 reduces average flowtime vs Capacity (~10% in paper)",
              reduction, reduction > 0.03);

  // Pick the DollyMP^2 95th percentile as the reference cut and compare
  // what fraction of Capacity jobs meet it (paper: 95% vs 80% at 350 s).
  const double cut = running_time_cdf(dollymp2).quantile(0.95);
  const double capacity_frac = running_time_cdf(capacity).fraction_at_most(cut);
  shape_check("Fig4b: fewer Capacity jobs finish within DollyMP^2's p95 running time "
              "(paper: 80% vs 95%)",
              capacity_frac, capacity_frac < 0.945);

  const double d2_vs_d1 = mean_flowtime_reduction(dollymp2, dollymp1);
  shape_check("Fig4: DollyMP^2 outperforms DollyMP^1 when lightly loaded", d2_vs_d1,
              d2_vs_d1 > -0.02);
  return 0;
}
