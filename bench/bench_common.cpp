#include "bench_common.h"

#include <iostream>
#include <stdexcept>

#include "dollymp/common/rng.h"
#include "dollymp/common/table.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/carbyne.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/hopper.h"
#include "dollymp/sched/simple_priority.h"
#include "dollymp/sched/tetris.h"

namespace dollymp::bench {

std::unique_ptr<Scheduler> make_scheduler(const std::string& key) {
  if (key == "capacity") return std::make_unique<CapacityScheduler>();
  if (key == "hopper") return std::make_unique<HopperScheduler>();
  if (key == "drf") return std::make_unique<DrfScheduler>();
  if (key == "tetris") return std::make_unique<TetrisScheduler>();
  if (key == "carbyne") return std::make_unique<CarbyneScheduler>();
  if (key == "srpt") {
    return std::make_unique<SimplePriorityScheduler>(
        SimplePriorityConfig{SimplePriorityRule::kSrpt, 1.5, 0});
  }
  if (key == "svf") {
    return std::make_unique<SimplePriorityScheduler>(
        SimplePriorityConfig{SimplePriorityRule::kSvf, 1.5, 0});
  }
  if (key.rfind("dollymp", 0) == 0) {
    DollyMPConfig config;
    if (key == "dollymp2-naive") {
      config.clone_budget = 2;
      config.smallest_first_clones = false;
    } else {
      config.clone_budget = std::stoi(key.substr(7));
    }
    return std::make_unique<DollyMPScheduler>(config);
  }
  throw std::invalid_argument("bench: unknown scheduler key '" + key + "'");
}

SimConfig deployment_config(std::uint64_t seed) {
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = seed;
  config.background.enabled = true;
  config.locality.enabled = true;
  return config;
}

SimResult run_workload(const Cluster& cluster, const SimConfig& config,
                       const std::vector<JobSpec>& jobs,
                       const std::string& scheduler_key) {
  auto scheduler = make_scheduler(scheduler_key);
  return simulate(cluster, config, jobs, *scheduler);
}

AppConfig paper_app_config() {
  AppConfig config;
  // Calibrated so a 4 GB WordCount runs ~300-400 s on the paper's 30-node
  // cluster (the Fig. 1 scale): ~100 s map tasks, ~150 s reduces.  At this
  // scale the paper's own "around 20 seconds" inter-arrival puts the
  // cluster near saturation for the Figs. 5-7 experiments.
  config.map_theta_per_gb = 100.0;
  config.straggler_cv = 0.9;
  return config;
}

namespace {

// Per-job container demands drawn from a Google-trace-like distribution:
// the paper's workload takes each task's CPU/memory request from the
// traces (Section 6.2), so demands vary across jobs and multi-resource
// packing quality differentiates the schedulers.
AppConfig sample_job_demands(AppConfig app, Rng& rng) {
  const double cpu = static_cast<double>(rng.range(1, 4));
  const double mem_per_cpu = rng.uniform(1.0, 3.0);
  app.map_demand = {cpu, std::round(cpu * mem_per_cpu * 2.0) / 2.0};
  app.reduce_demand = {cpu, std::round(cpu * (mem_per_cpu + 0.5) * 2.0) / 2.0};
  // A wider container processes its fixed-size split proportionally faster,
  // so per-job core-seconds (and the cluster load) stay calibrated.
  app.map_theta_per_gb /= cpu;
  return app;
}

}  // namespace

std::vector<JobSpec> paper_app_mix(int count, std::uint64_t seed) {
  const AppConfig base = paper_app_config();
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const AppConfig app = sample_job_demands(base, rng);
    if (i % 2 == 0) {
      // PageRank: half with 10 GB inputs, half around 1 GB (Section 6.2).
      const double input = (i % 4 == 0) ? 10.0 : 1.0;
      jobs.push_back(make_pagerank(i, input, 3, 0.0, app));
    } else {
      jobs.push_back(make_wordcount(i, 10.0, 0.0, app));
    }
  }
  return jobs;
}

std::vector<JobSpec> pagerank_suite(int count, std::uint64_t seed) {
  const AppConfig base = paper_app_config();
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const double input = rng.chance(0.5) ? 10.0 : 1.0;
    jobs.push_back(make_pagerank(i, input, 3, 0.0, sample_job_demands(base, rng)));
  }
  return jobs;
}

std::vector<JobSpec> wordcount_suite(int count, std::uint64_t seed) {
  const AppConfig base = paper_app_config();
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  Rng rng(seed + 1);
  for (int i = 0; i < count; ++i) {
    jobs.push_back(make_wordcount(i, 10.0, 0.0, sample_job_demands(base, rng)));
  }
  return jobs;
}

void print_cdf_figure(const std::string& title,
                      const std::vector<std::pair<std::string, Cdf>>& series) {
  std::cout << banner(title);
  ConsoleTable table({"scheduler", "p10", "p20", "p30", "p40", "p50", "p60", "p70", "p80",
                      "p90", "p100"});
  for (const auto& [label, cdf] : series) {
    std::vector<double> row;
    for (const auto& [q, v] : cdf.curve(10)) {
      (void)q;
      row.push_back(v);
    }
    table.add_labeled_row(label, row, 1);
  }
  std::cout << table.render();
}

void shape_check(const std::string& claim, double measured, bool holds) {
  std::cout << "[shape] " << claim << " | measured: " << measured << " | "
            << (holds ? "HOLDS" : "DEVIATES") << "\n";
}

void print_flowtime_table(const std::string& title,
                          const std::vector<SimResult>& results) {
  std::cout << banner(title);
  std::vector<RunSummary> summaries;
  summaries.reserve(results.size());
  for (const auto& r : results) summaries.push_back(summarize(r));
  std::cout << render_summaries(summaries);
  std::cout << banner(title + " — control plane");
  std::cout << render_control_plane(summaries);
}

DryRunContext::DryRunContext(Cluster cluster, std::vector<JobSpec> jobs,
                             const SimConfig& config)
    : cluster_(std::move(cluster)),
      config_(config),
      locality_(config.locality, cluster_),
      specs_(std::move(jobs)) {
  Rng rng(config.seed);
  store_.reserve_for(specs_);
  for (const auto& spec : specs_) {
    const std::size_t idx = store_.materialize(spec, config_.slot_seconds, locality_, rng);
    jobs_[idx].arrived = true;
  }
  active_.reserve(jobs_.size());
  for (auto& job : jobs_) active_.push_back(&job);
  if (config_.threads != 1) {
    pool_.emplace(static_cast<std::size_t>(config_.threads));
    if (pool_->size() < 2) pool_.reset();
  }
}

bool DryRunContext::place_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                               ServerId server_id) {
  if (job.finished || !phase.runnable() || task.finished) return false;
  if (task.total_copies() >= config_.max_copies_per_task) return false;
  Server& server = cluster_.server(static_cast<std::size_t>(server_id));
  if (!server.allocate(task.demand)) return false;
  const bool first_copy = task.copies.empty();
  CopyRuntime copy;
  copy.server = server_id;
  copy.start = 0;
  copy.active = true;
  task.copies.push_back(copy);
  ++phase.active_copies;
  if (first_copy) --phase.unscheduled_tasks;
  ++placements_;
  return true;
}

void DryRunContext::reset_placements() {
  cluster_.reset_allocations();
  for (auto& job : jobs_) {
    for (auto& phase : job.phases) {
      for (auto& task : phase.tasks) {
        task.copies.clear();
        task.first_start = kNever;
      }
      phase.active_copies = 0;
      phase.unscheduled_tasks = phase.spec->task_count;
      phase.first_unscheduled_hint = 0;
    }
    job.first_start = kNever;
  }
  placements_ = 0;
}

}  // namespace dollymp::bench
